#include "algo/validate.hh"

#include <cmath>

#include "common/logging.hh"

namespace gds::algo
{

namespace
{

std::string
vertexMsg(const char *what, VertexId v)
{
    return std::string(what) + " at vertex " + std::to_string(v);
}

} // namespace

ValidationResult
validateBfs(const graph::Csr &g, VertexId source,
            const std::vector<PropValue> &level)
{
    const VertexId n = g.numVertices();
    if (level.size() != n)
        return ValidationResult::fail("level vector size mismatch");
    if (level[source] != 0.0f)
        return ValidationResult::fail("source level is not 0");

    // Pass over all edges: no level skipping; collect tightness.
    std::vector<std::uint8_t> tight(n, 0);
    for (VertexId u = 0; u < n; ++u) {
        if (level[u] == propInf)
            continue;
        for (const VertexId v : g.neighborsOf(u)) {
            if (level[v] > level[u] + 1.0f)
                return ValidationResult::fail(
                    vertexMsg("edge skips a BFS level", v));
            if (level[v] == level[u] + 1.0f)
                tight[v] = 1;
        }
    }
    for (VertexId v = 0; v < n; ++v) {
        if (v == source || level[v] == propInf)
            continue;
        if (level[v] < 0.0f)
            return ValidationResult::fail(vertexMsg("negative level", v));
        if (!tight[v])
            return ValidationResult::fail(
                vertexMsg("level not achieved by any in-edge", v));
    }
    return ValidationResult::ok();
}

ValidationResult
validateSssp(const graph::Csr &g, VertexId source,
             const std::vector<PropValue> &dist)
{
    const VertexId n = g.numVertices();
    if (dist.size() != n)
        return ValidationResult::fail("distance vector size mismatch");
    if (dist[source] != 0.0f)
        return ValidationResult::fail("source distance is not 0");
    if (!g.hasWeights())
        return ValidationResult::fail("SSSP needs a weighted graph");

    std::vector<std::uint8_t> tight(n, 0);
    for (VertexId u = 0; u < n; ++u) {
        if (dist[u] == propInf)
            continue;
        const auto nbrs = g.neighborsOf(u);
        const auto ws = g.weightsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const PropValue relaxed =
                dist[u] + static_cast<PropValue>(ws[i]);
            if (dist[nbrs[i]] > relaxed)
                return ValidationResult::fail(
                    vertexMsg("edge can still relax", nbrs[i]));
            if (dist[nbrs[i]] == relaxed)
                tight[nbrs[i]] = 1;
        }
    }
    for (VertexId v = 0; v < n; ++v) {
        if (v == source || dist[v] == propInf)
            continue;
        if (!tight[v])
            return ValidationResult::fail(
                vertexMsg("distance not achieved by any in-edge", v));
    }
    return ValidationResult::ok();
}

ValidationResult
validateSswp(const graph::Csr &g, VertexId source,
             const std::vector<PropValue> &width)
{
    const VertexId n = g.numVertices();
    if (width.size() != n)
        return ValidationResult::fail("width vector size mismatch");
    if (width[source] != propInf)
        return ValidationResult::fail("source width is not infinity");
    if (!g.hasWeights())
        return ValidationResult::fail("SSWP needs a weighted graph");

    std::vector<std::uint8_t> tight(n, 0);
    for (VertexId u = 0; u < n; ++u) {
        if (width[u] == 0.0f)
            continue;
        const auto nbrs = g.neighborsOf(u);
        const auto ws = g.weightsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const PropValue through =
                std::min(width[u], static_cast<PropValue>(ws[i]));
            if (width[nbrs[i]] < through)
                return ValidationResult::fail(
                    vertexMsg("edge can still widen", nbrs[i]));
            if (width[nbrs[i]] == through)
                tight[nbrs[i]] = 1;
        }
    }
    for (VertexId v = 0; v < n; ++v) {
        if (v == source || width[v] == 0.0f)
            continue;
        if (!tight[v])
            return ValidationResult::fail(
                vertexMsg("width not achieved by any in-edge", v));
    }
    return ValidationResult::ok();
}

ValidationResult
validateCc(const graph::Csr &g, const std::vector<PropValue> &label)
{
    const VertexId n = g.numVertices();
    if (label.size() != n)
        return ValidationResult::fail("label vector size mismatch");

    std::vector<std::uint8_t> achieved(n, 0);
    for (VertexId v = 0; v < n; ++v) {
        const PropValue l = label[v];
        if (l < 0.0f || l > static_cast<PropValue>(v))
            return ValidationResult::fail(
                vertexMsg("label above own id", v));
        // A root holds its own id.
        const auto root = static_cast<VertexId>(l);
        if (label[root] != l)
            return ValidationResult::fail(
                vertexMsg("label does not name a root", v));
        if (root == v)
            achieved[v] = 1;
    }
    for (VertexId u = 0; u < n; ++u) {
        for (const VertexId v : g.neighborsOf(u)) {
            if (label[v] > label[u])
                return ValidationResult::fail(
                    vertexMsg("label can still propagate", v));
            if (label[v] == label[u])
                achieved[v] = 1;
        }
    }
    for (VertexId v = 0; v < n; ++v) {
        if (!achieved[v])
            return ValidationResult::fail(
                vertexMsg("label not justified by any in-edge", v));
    }
    return ValidationResult::ok();
}

ValidationResult
validatePr(const graph::Csr &g, const std::vector<PropValue> &prop,
           double tolerance)
{
    const VertexId n = g.numVertices();
    if (prop.size() != n)
        return ValidationResult::fail("property vector size mismatch");
    constexpr double damping = 0.85;

    auto cdeg = [&g](VertexId v) {
        return static_cast<double>(
            std::max<std::uint64_t>(g.outDegree(v), 1));
    };

    double mass = 0.0;
    for (VertexId v = 0; v < n; ++v) {
        if (!(prop[v] > 0.0f) || !std::isfinite(prop[v]))
            return ValidationResult::fail(
                vertexMsg("non-positive or non-finite rank", v));
        mass += static_cast<double>(prop[v]) * cdeg(v);
    }
    // The VCPM formulation has no dangling-vertex redistribution, so
    // mass below 1 is expected on graphs with zero-out-degree vertices;
    // mass above 1 is always wrong.
    if (mass > 1.05)
        return ValidationResult::fail(
            "rank mass " + std::to_string(mass) + " exceeds 1");

    // Activation-gated PR has no *local* certificate: once a vertex's
    // in-neighbours deactivate, the exact balance equation no longer
    // holds at termination. Instead, compare against an independent
    // dense power iteration (the classical fixed point) in aggregate.
    std::vector<double> rank(n);
    for (VertexId v = 0; v < n; ++v)
        rank[v] = 1.0 / static_cast<double>(n);
    std::vector<double> next(n);
    const double alpha = (1.0 - damping) / static_cast<double>(n);
    for (int iter = 0; iter < 200; ++iter) {
        std::fill(next.begin(), next.end(), alpha);
        for (VertexId u = 0; u < n; ++u) {
            if (g.outDegree(u) == 0)
                continue;
            const double share =
                damping * rank[u] / static_cast<double>(g.outDegree(u));
            for (const VertexId v : g.neighborsOf(u))
                next[v] += share;
        }
        rank.swap(next);
    }

    double err_sum = 0.0;
    double err_max = 0.0;
    for (VertexId v = 0; v < n; ++v) {
        const double got = static_cast<double>(prop[v]) * cdeg(v);
        const double rel = std::abs(got - rank[v]) / std::max(rank[v], alpha);
        err_sum += rel;
        err_max = std::max(err_max, rel);
    }
    const double mean_err = err_sum / static_cast<double>(n);
    if (mean_err > tolerance)
        return ValidationResult::fail(
            "mean rank deviation " + std::to_string(mean_err) +
            " from the power-iteration fixed point exceeds tolerance");
    // Activation hysteresis can leave individual vertices ~50% off; a
    // larger pointwise deviation indicates corruption.
    if (err_max > 6.0 * tolerance)
        return ValidationResult::fail(
            "worst rank deviation " + std::to_string(err_max) +
            " from the power-iteration fixed point exceeds tolerance");
    return ValidationResult::ok();
}

ValidationResult
validate(AlgorithmId id, const graph::Csr &g, VertexId source,
         const std::vector<PropValue> &properties)
{
    switch (id) {
      case AlgorithmId::Bfs:
        return validateBfs(g, source, properties);
      case AlgorithmId::Sssp:
        return validateSssp(g, source, properties);
      case AlgorithmId::Cc:
        return validateCc(g, properties);
      case AlgorithmId::Sswp:
        return validateSswp(g, source, properties);
      case AlgorithmId::Pr:
        return validatePr(g, properties);
    }
    panic("unknown algorithm id");
}

} // namespace gds::algo
