/**
 * @file
 * Functional (untimed) executor of the push-based VCPM (Algorithm 1).
 *
 * Serves three purposes:
 *  - golden results against which both cycle-level accelerator models are
 *    verified on every run;
 *  - per-iteration instrumentation (active-vertex degree histogram, vertex
 *    update counts) reproducing the paper's motivation study (Fig. 2);
 *  - workload characterization feeding the GunrockSim GPU timing model.
 */

#pragma once

#include <array>
#include <vector>

#include "algo/vcpm.hh"

namespace gds::algo
{

/** Per-iteration observation used by Fig. 2 and by GunrockSim. */
struct IterationTrace
{
    /** Iteration index, starting at 1 as in Fig. 2. */
    unsigned iteration = 0;
    /** Number of active vertices entering this iteration. */
    std::uint64_t activeVertices = 0;
    /** Edges scattered in this iteration (sum of active degrees). */
    std::uint64_t edgesProcessed = 0;
    /** Vertices whose property changed in the Apply phase. */
    std::uint64_t vertexUpdates = 0;
    /** tProp reductions that modified the stored value ("ready" marks). */
    std::uint64_t tPropModifications = 0;
    /** Reduce operations landing on a destination already touched this
     *  iteration (a RAW-conflict proxy used by the GPU atomic model). */
    std::uint64_t conflictingReduces = 0;
    /** Active-vertex degree histogram with Fig. 2's buckets:
     *  [0,0] [1,2] [3,4] [5,8] [9,16] [17,32] [33,64] >64. */
    std::array<std::uint64_t, 8> degreeHistogram{};
    /** Largest active-vertex degree (GPU warp-imbalance model input). */
    std::uint64_t maxActiveDegree = 0;
    /** Sum over 32-thread warps (consecutive active vertices) of the
     *  maximum degree within the warp: the per-thread-expand cost a GPU
     *  pays under intra-warp load imbalance. */
    std::uint64_t warpMaxDegreeSum = 0;
};

/** Result of a functional run. */
struct ReferenceResult
{
    std::vector<PropValue> properties;
    unsigned iterations = 0;
    std::uint64_t totalEdgesProcessed = 0;
    std::uint64_t totalVertexUpdates = 0;
    /** One entry per iteration when tracing was requested. */
    std::vector<IterationTrace> trace;
};

/** Options of a functional run. */
struct ReferenceOptions
{
    /** Hard iteration cap (Algorithm 1's "maximum number of iterations"). */
    unsigned maxIterations = 1000;
    /** Record a per-iteration IterationTrace. */
    bool collectTrace = false;
};

/**
 * Execute @p algorithm on @p g from @p source until no vertex is activated
 * or the iteration cap is reached.
 */
ReferenceResult runReference(const graph::Csr &g, VcpmAlgorithm &algorithm,
                             VertexId source,
                             const ReferenceOptions &options = {});

} // namespace gds::algo
