#include "algo/pull_engine.hh"

#include "common/error.hh"
#include "graph/transforms.hh"

namespace gds::algo
{

PullResult
runPullReference(const graph::Csr &g, VcpmAlgorithm &algorithm,
                 VertexId source, unsigned max_iterations)
{
    const VertexId v_count = g.numVertices();
    gds_require(v_count > 0, ConfigError, "cannot run on an empty graph");
    gds_require(source < v_count, ConfigError, "source %u out of range",
                source);
    gds_require(!algorithm.usesWeights() || g.hasWeights(), ConfigError,
               "%s needs a weighted graph", algorithm.name().c_str());

    algorithm.bind(g);
    const graph::Csr in_edges = graph::transpose(g);

    std::vector<PropValue> prop(v_count);
    std::vector<PropValue> next(v_count);
    std::vector<PropValue> c_prop;
    for (VertexId v = 0; v < v_count; ++v)
        prop[v] = algorithm.initialProp(v, g, source);
    if (algorithm.usesConstProp()) {
        c_prop.resize(v_count);
        for (VertexId v = 0; v < v_count; ++v)
            c_prop[v] = algorithm.constProp(v, g);
    }

    PullResult result;
    bool changed = true;
    while (changed && result.iterations < max_iterations) {
        ++result.iterations;
        changed = false;
        for (VertexId v = 0; v < v_count; ++v) {
            // Gather: reduce Process_Edge over the in-edges of v.
            PropValue t_prop = algorithm.tPropIdentity(v, g, source);
            const auto sources = in_edges.neighborsOf(v);
            for (std::size_t i = 0; i < sources.size(); ++i) {
                const Weight w = algorithm.usesWeights()
                                     ? in_edges.weightsOf(v)[i]
                                     : Weight{1};
                t_prop = algorithm.reduce(
                    t_prop, algorithm.processEdge(prop[sources[i]], w));
            }
            result.edgesScanned += sources.size();
            const PropValue cp =
                algorithm.usesConstProp() ? c_prop[v] : PropValue{0};
            const PropValue apply_res = algorithm.apply(prop[v], t_prop,
                                                        cp);
            next[v] = apply_res;
            if (algorithm.changed(prop[v], apply_res))
                changed = true;
        }
        prop.swap(next);
    }

    result.properties = std::move(prop);
    return result;
}

} // namespace gds::algo
