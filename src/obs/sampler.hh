/**
 * @file
 * Interval statistics sampler: snapshots a registered set of probes every
 * N simulated cycles into a columnar stats::TimeSeries, so dynamic
 * behaviour (bandwidth ramps, frontier drain, queue pressure) is visible
 * instead of being averaged away by the end-of-run stats dump.
 *
 * Probes are free-form `double()` callables; convenience registrars
 * cover the common cases (a stats::Scalar, or every scalar under a
 * stats::Group with dotted column names). The Simulator drives tick()
 * once per cycle; with no interval configured that is one predictable
 * branch, same discipline as DPRINTF.
 *
 * Counter-style probes (bytes moved, conflicts) sample cumulatively —
 * plot the per-interval derivative for a rate; occupancy-style probes
 * (queue sizes, frontier) sample instantaneously.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"
#include "stats/stats.hh"
#include "stats/timeseries.hh"

namespace gds::obs
{

class Sampler
{
  public:
    Sampler() = default;

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Sample every @p cycles cycles; 0 disables sampling entirely. */
    void
    setInterval(Cycle cycles)
    {
        _interval = cycles;
        _nextBoundary = 0; // re-derive the boundary on the next tick
    }
    Cycle interval() const { return _interval; }

    /**
     * Register a probe column. @throws ConfigError after the first
     * snapshot (the column set is sealed) or on duplicate names.
     */
    void add(std::string name, std::function<double()> probe);

    /** Register a cumulative stats::Scalar (samples .value()). */
    void addScalar(std::string name, const stats::Scalar &s);

    /**
     * Register every Scalar reachable under @p group as
     * "<prefix><dotted.path>" columns (vectors and distributions are
     * skipped: one column per sampled quantity keeps the CSV plottable).
     */
    void addGroup(const stats::Group &group, const std::string &prefix);

    std::size_t probeCount() const { return probes.size(); }

    /**
     * Observer called after every recorded snapshot with the sample
     * cycle and the freshly sampled row (ordered like series().columns()
     * once sealed). The simulation service uses this to forward live
     * progress to subscribed clients; the callback runs on the
     * simulating thread, so it must be cheap and must not call back into
     * this sampler.
     */
    void
    setOnSample(
        std::function<void(Cycle, const std::vector<double> &)> callback)
    {
        onSample = std::move(callback);
    }

    /**
     * Per-cycle hook; samples when the interval divides @p cycle. The
     * cached next-boundary cycle turns the consecutive-cycle hot path
     * into one compare; the divide only runs when a boundary is reached
     * or the caller's clock jumped (first tick, interval change, rewind).
     */
    void
    tick(Cycle cycle)
    {
        if (_interval == 0)
            return;
        if (cycle < _nextBoundary && cycle + _interval > _nextBoundary)
            return; // strictly between boundaries: nothing to do
        if (cycle % _interval == 0)
            sample(cycle);
        _nextBoundary = cycle - cycle % _interval + _interval;
    }

    /**
     * Cycles from @p cycle to the next sampling boundary at or after it
     * (0 when @p cycle itself is a boundary), or DelayQueue-style never
     * when sampling is disabled. Pure function of the interval, not of
     * tick() history; the fast-forward engine uses it to clamp skips so
     * every boundary is reached by a real tick.
     */
    Cycle
    cyclesUntilNextSample(Cycle cycle) const
    {
        if (_interval == 0)
            return ~Cycle{0};
        return cycle % _interval == 0 ? 0 : _interval - cycle % _interval;
    }

    /** Snapshot every probe now (also seals the column set). */
    void sample(Cycle cycle);

    std::size_t sampleCount() const { return table.rowCount(); }
    const stats::TimeSeries &series() const { return table; }

    void writeCsv(std::ostream &os) const { table.writeCsv(os); }
    void writeJson(std::ostream &os) const { table.writeJson(os); }

    /** writeCsv() to @p path; false (and a warning) on I/O failure. */
    bool writeCsvFile(const std::string &path) const;

    /**
     * Checkpoint hook: the sealed flag plus every recorded row, so a
     * resumed run appends to an identical series. Probes are live
     * callables and cannot travel — the resume path re-registers the
     * same probes in the same order before calling restoreState(),
     * which verifies the count against the sealed column set.
     */
    template <typename SER>
    void
    saveState(SER &s) const
    {
        s.writeBool(sealed);
        const std::vector<std::string> &cols = table.columns();
        s.writeU64(cols.size());
        for (const std::string &col : cols)
            s.writeString(col);
        s.writeU64(table.rowCount());
        for (std::size_t r = 0; r < table.rowCount(); ++r) {
            s.writeU64(table.cycleAt(r));
            for (std::size_t c = 0; c < cols.size(); ++c)
                s.writeDouble(table.value(r, c));
        }
    }

    template <typename DES>
    void
    restoreState(DES &d)
    {
        sealed = d.readBool();
        const std::uint64_t cols = d.readU64();
        std::vector<std::string> names;
        names.reserve(static_cast<std::size_t>(cols));
        for (std::uint64_t c = 0; c < cols; ++c)
            names.push_back(d.readString());
        table.clear();
        if (!names.empty())
            table.setColumns(std::move(names));
        const std::uint64_t rows = d.readU64();
        std::vector<double> values(static_cast<std::size_t>(cols));
        for (std::uint64_t r = 0; r < rows; ++r) {
            const Cycle cycle = d.readU64();
            for (double &v : values)
                v = d.readDouble();
            table.addRow(cycle, values);
        }
        if (sealed) {
            gds_require(probes.size() == table.columnCount(),
                        CheckpointError,
                        "sampler checkpoint sealed %zu columns but %zu "
                        "probes are registered",
                        table.columnCount(), probes.size());
            row.resize(probes.size());
        }
        _nextBoundary = 0; // re-derived on the next tick
    }

  private:
    struct Probe
    {
        std::string name;
        std::function<double()> fn;
    };

    Cycle _interval = 0;
    Cycle _nextBoundary = 0; ///< first cycle the fast tick() path re-checks
    bool sealed = false;
    std::function<void(Cycle, const std::vector<double> &)> onSample;
    std::vector<Probe> probes;
    std::vector<double> row; ///< scratch, avoids per-sample allocation
    stats::TimeSeries table;
};

} // namespace gds::obs
