#include "obs/sampler.hh"

#include <fstream>

#include "common/error.hh"
#include "common/logging.hh"

namespace gds::obs
{

void
Sampler::add(std::string name, std::function<double()> probe)
{
    gds_require(!sealed, ConfigError,
                "sampler probes cannot be added after the first sample");
    gds_require(static_cast<bool>(probe), ConfigError,
                "sampler probe '%s' is empty", name.c_str());
    for (const Probe &p : probes) {
        gds_require(p.name != name, ConfigError,
                    "duplicate sampler probe '%s'", name.c_str());
    }
    probes.push_back(Probe{std::move(name), std::move(probe)});
}

void
Sampler::addScalar(std::string name, const stats::Scalar &s)
{
    add(std::move(name), [&s] { return s.value(); });
}

void
Sampler::addGroup(const stats::Group &group, const std::string &prefix)
{
    for (const stats::Stat *s : group.stats()) {
        if (const auto *scalar = dynamic_cast<const stats::Scalar *>(s))
            addScalar(prefix + s->name(), *scalar);
    }
    for (const stats::Group *child : group.childGroups())
        addGroup(*child, prefix + child->name() + ".");
}

void
Sampler::sample(Cycle cycle)
{
    if (!sealed) {
        std::vector<std::string> names;
        names.reserve(probes.size());
        for (const Probe &p : probes)
            names.push_back(p.name);
        table.setColumns(std::move(names));
        row.resize(probes.size());
        sealed = true;
    }
    for (std::size_t i = 0; i < probes.size(); ++i)
        row[i] = probes[i].fn();
    table.addRow(cycle, row);
    if (onSample)
        onSample(cycle, row);
}

bool
Sampler::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (out)
        writeCsv(out);
    if (!out) {
        warn("cannot write sample file '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace gds::obs
