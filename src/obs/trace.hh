/**
 * @file
 * Cycle-resolved event tracing in the Chrome trace-event format, loadable
 * directly into Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * The Tracer records three event kinds:
 *  - duration events (phase B/E pairs) for phases, slices and iterations;
 *  - instant events for incidents (watchdog verdicts, injected faults,
 *    DPRINTF lines routed through the tracer);
 *  - counter events for per-component activity and sampled stats.
 *
 * One trace "thread" (track) is created per registered sim::Component;
 * timestamps are simulated cycles (rendered as microseconds, so 1 cycle
 * reads as 1 us in the UI — the accelerator clock is 1 GHz, so the
 * displayed "1 ms" is really 1 M cycles = 1 ms of simulated time x1000).
 *
 * Discipline: tracing follows the DPRINTF rule — when no tracer is
 * active, instrumentation costs exactly one predictable branch
 * (`if (Tracer *t = activeTracer())`), so hooks can stay in hot model
 * code. The active tracer is thread-local: concurrent harness workers
 * each trace (or not) their own cell.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gds::obs
{

/** Index of one trace track (a named "thread" in the trace UI). */
using TrackId = std::uint32_t;

class Tracer
{
  public:
    explicit Tracer(std::string process_name = "gds");

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Get-or-create the track named @p name (e.g. a component path). */
    TrackId track(const std::string &name);

    const std::string &trackName(TrackId id) const;
    std::size_t trackCount() const { return trackNames.size(); }

    /** Open a duration event (Chrome phase "B"). */
    void begin(TrackId track_id, std::string name, Cycle cycle);

    /** Close the innermost open duration event on @p track_id ("E"). */
    void end(TrackId track_id, Cycle cycle);

    /** A zero-duration incident ("i"), with an optional free-text note. */
    void instant(TrackId track_id, std::string name, Cycle cycle,
                 std::string detail = {});

    /** One point of the counter series @p series on @p track_id ("C"). */
    void counter(TrackId track_id, const std::string &series, double value,
                 Cycle cycle);

    /**
     * Close every still-open duration event at @p cycle, innermost first.
     * Called after a watchdog-aborted run so the emitted JSON stays
     * well nested and loadable.
     */
    void endAllOpen(Cycle cycle);

    std::size_t eventCount() const { return events.size(); }
    std::size_t openEventCount() const;

    /**
     * True when every recorded E closes the innermost open B on its
     * track and no B is left open. @p error names the first violation.
     */
    bool wellNested(std::string *error = nullptr) const;

    /**
     * Serialize as {"traceEvents": [...], ...}. Emits per-track
     * thread_name metadata first so the UI labels component tracks.
     */
    void write(std::ostream &os) const;

    /** write() to @p path; returns false (and warns) on I/O failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Checkpoint hook: the full event log and track table travel with
     * the simulator state, so a resumed run appends to a trace identical
     * to the uninterrupted one. Restoring track names in recorded order
     * preserves TrackId assignment for every later track() call.
     */
    template <typename SER>
    void
    saveState(SER &s) const
    {
        s.writeU64(trackNames.size());
        for (const std::string &name : trackNames)
            s.writeString(name);
        for (const unsigned depth : openDepth)
            s.writeU64(depth);
        s.writeU64(events.size());
        for (const Event &e : events) {
            s.writeU8(static_cast<std::uint8_t>(e.phase));
            s.writeU32(e.tid);
            s.writeU64(e.ts);
            s.writeString(e.name);
            s.writeString(e.detail);
            s.writeDouble(e.value);
        }
    }

    template <typename DES>
    void
    restoreState(DES &d)
    {
        const std::uint64_t tracks = d.readU64();
        trackNames.clear();
        trackNames.reserve(static_cast<std::size_t>(tracks));
        for (std::uint64_t t = 0; t < tracks; ++t)
            trackNames.push_back(d.readString());
        openDepth.assign(static_cast<std::size_t>(tracks), 0);
        for (unsigned &depth : openDepth)
            depth = static_cast<unsigned>(d.readU64());
        const std::uint64_t n = d.readU64();
        events.clear();
        events.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            Event e;
            e.phase = static_cast<char>(d.readU8());
            e.tid = d.readU32();
            e.ts = d.readU64();
            e.name = d.readString();
            e.detail = d.readString();
            e.value = d.readDouble();
            events.push_back(std::move(e));
        }
    }

  private:
    struct Event
    {
        char phase;         ///< 'B', 'E', 'i' or 'C'
        TrackId tid;
        Cycle ts;
        std::string name;   ///< empty for 'E'
        std::string detail; ///< instant note, unused otherwise
        double value = 0.0; ///< counter value
    };

    std::string processName;
    std::vector<std::string> trackNames;
    std::vector<unsigned> openDepth; ///< open B events per track
    std::vector<Event> events;
};

/** The thread's active tracer, or nullptr when tracing is off. */
Tracer *activeTracer();

/**
 * Install @p tracer as the thread's active tracer for the lifetime of the
 * scope; also routes DPRINTF lines into it as instant events. Restores
 * the previous tracer (usually none) on destruction.
 */
class ScopedActiveTracer
{
  public:
    explicit ScopedActiveTracer(Tracer *tracer);
    ~ScopedActiveTracer();

    ScopedActiveTracer(const ScopedActiveTracer &) = delete;
    ScopedActiveTracer &operator=(const ScopedActiveTracer &) = delete;

  private:
    Tracer *previous;
};

} // namespace gds::obs
