#include "obs/trace.hh"

#include <fstream>
#include <map>

#include "common/debug.hh"
#include "common/logging.hh"
#include "stats/json.hh"

namespace gds::obs
{

Tracer::Tracer(std::string process_name)
    : processName(std::move(process_name))
{}

TrackId
Tracer::track(const std::string &name)
{
    for (TrackId id = 0; id < trackNames.size(); ++id) {
        if (trackNames[id] == name)
            return id;
    }
    trackNames.push_back(name);
    openDepth.push_back(0);
    return static_cast<TrackId>(trackNames.size() - 1);
}

const std::string &
Tracer::trackName(TrackId id) const
{
    gds_assert(id < trackNames.size(), "bad track id %u", id);
    return trackNames[id];
}

void
Tracer::begin(TrackId track_id, std::string name, Cycle cycle)
{
    gds_assert(track_id < trackNames.size(), "bad track id %u", track_id);
    ++openDepth[track_id];
    events.push_back(Event{'B', track_id, cycle, std::move(name), {}, 0.0});
}

void
Tracer::end(TrackId track_id, Cycle cycle)
{
    gds_assert(track_id < trackNames.size(), "bad track id %u", track_id);
    gds_assert(openDepth[track_id] > 0,
               "end() without a matching begin() on track '%s'",
               trackNames[track_id].c_str());
    --openDepth[track_id];
    events.push_back(Event{'E', track_id, cycle, {}, {}, 0.0});
}

void
Tracer::instant(TrackId track_id, std::string name, Cycle cycle,
                std::string detail)
{
    gds_assert(track_id < trackNames.size(), "bad track id %u", track_id);
    events.push_back(Event{'i', track_id, cycle, std::move(name),
                           std::move(detail), 0.0});
}

void
Tracer::counter(TrackId track_id, const std::string &series, double value,
                Cycle cycle)
{
    gds_assert(track_id < trackNames.size(), "bad track id %u", track_id);
    // Counter tracks are keyed by (pid, name) in the trace UIs, so the
    // event name carries the track name to keep components separate.
    events.push_back(Event{'C', track_id, cycle,
                           trackNames[track_id] + "." + series, {}, value});
}

void
Tracer::endAllOpen(Cycle cycle)
{
    for (TrackId id = 0; id < trackNames.size(); ++id) {
        while (openDepth[id] > 0)
            end(id, cycle);
    }
}

std::size_t
Tracer::openEventCount() const
{
    std::size_t open = 0;
    for (const unsigned d : openDepth)
        open += d;
    return open;
}

bool
Tracer::wellNested(std::string *error) const
{
    auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        return false;
    };
    // Per-track stacks of open event names, replayed in record order.
    std::map<TrackId, std::vector<const Event *>> stacks;
    for (const Event &e : events) {
        if (e.phase == 'B') {
            stacks[e.tid].push_back(&e);
        } else if (e.phase == 'E') {
            auto &stack = stacks[e.tid];
            if (stack.empty()) {
                return fail("E without open B on track '" +
                            trackNames[e.tid] + "' at cycle " +
                            std::to_string(e.ts));
            }
            if (e.ts < stack.back()->ts) {
                return fail("E before its B on track '" +
                            trackNames[e.tid] + "' at cycle " +
                            std::to_string(e.ts));
            }
            stack.pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks) {
        if (!stack.empty()) {
            return fail("unclosed event '" + stack.back()->name +
                        "' on track '" + trackNames[tid] + "'");
        }
    }
    return true;
}

void
Tracer::write(std::ostream &os) const
{
    os.precision(17);
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: the process name and one labelled thread per track.
    sep();
    os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name","args":)"
       << "{\"name\":";
    stats::emitJsonString(os, processName);
    os << "}}";
    for (TrackId id = 0; id < trackNames.size(); ++id) {
        sep();
        os << R"({"ph":"M","pid":1,"tid":)" << (id + 1)
           << R"(,"name":"thread_name","args":{"name":)";
        stats::emitJsonString(os, trackNames[id]);
        os << "}}";
    }

    for (const Event &e : events) {
        sep();
        os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":"
           << (e.tid + 1) << ",\"ts\":" << e.ts;
        if (e.phase != 'E') {
            os << ",\"name\":";
            stats::emitJsonString(os, e.name);
        }
        if (e.phase == 'i') {
            os << ",\"s\":\"t\"";
            if (!e.detail.empty()) {
                os << ",\"args\":{\"detail\":";
                stats::emitJsonString(os, e.detail);
                os << '}';
            }
        } else if (e.phase == 'C') {
            os << ",\"args\":{\"value\":";
            stats::emitJsonNumber(os, e.value);
            os << '}';
        }
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
          "{\"clock\":\"1 ts = 1 simulated cycle\"}}\n";
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (out)
        write(out);
    if (!out) {
        warn("cannot write trace file '%s'", path.c_str());
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Active-tracer plumbing + DPRINTF routing.
// ---------------------------------------------------------------------

namespace
{

thread_local Tracer *currentTracer = nullptr;

/** debug::LineSink adapter: a DPRINTF line becomes an instant event on
 *  the emitting component's track, stamped with its cycle. */
void
traceDebugLine(void *obj, debug::Flag flag, Cycle cycle,
               const char *component, const char *text)
{
    Tracer *tracer = static_cast<Tracer *>(obj);
    const TrackId id =
        tracer->track(component != nullptr ? component : "debug");
    tracer->instant(id, text, cycle, debug::flagName(flag));
}

} // namespace

Tracer *
activeTracer()
{
    return currentTracer;
}

ScopedActiveTracer::ScopedActiveTracer(Tracer *tracer)
    : previous(currentTracer)
{
    currentTracer = tracer;
    debug::setLineSink(tracer != nullptr ? traceDebugLine : nullptr,
                       tracer);
}

ScopedActiveTracer::~ScopedActiveTracer()
{
    currentTracer = previous;
    debug::setLineSink(previous != nullptr ? traceDebugLine : nullptr,
                       previous);
}

} // namespace gds::obs
