#include "stats/metrics.hh"

#include <algorithm>
#include <cstdio>

#include "common/error.hh"
#include "common/logging.hh"

namespace gds::stats
{

namespace
{

/** Render a double the way Prometheus clients conventionally do: shortest
 *  round-trippable-ish decimal, no trailing zeros ("0.001", "2.5", "10"). */
std::string
renderNumber(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(double lowest, double growth, int buckets)
{
    gds_require(lowest > 0, ConfigError,
                "histogram lowest bound must be > 0, got %g", lowest);
    gds_require(growth > 1, ConfigError,
                "histogram growth must be > 1, got %g", growth);
    gds_require(buckets >= 1, ConfigError,
                "histogram needs at least one bucket, got %d", buckets);
    bounds.reserve(static_cast<std::size_t>(buckets));
    double bound = lowest;
    for (int i = 0; i < buckets; ++i) {
        bounds.push_back(bound);
        bound *= growth;
    }
    counts.assign(bounds.size() + 1, 0);
}

void
Histogram::observe(double value)
{
    // Buckets grow geometrically, so a linear scan touches few entries
    // for typical latencies and stays branch-predictable; the shared
    // mutex, not the scan, is the relevant cost and it is held for tens
    // of nanoseconds.
    std::size_t idx = 0;
    while (idx < bounds.size() && value > bounds[idx])
        ++idx;
    const std::lock_guard<std::mutex> lock(mu);
    ++counts[idx];
    total += value;
    largest = std::max(largest, value);
    ++n;
}

void
Histogram::merge(const Histogram &other)
{
    gds_require(bounds == other.bounds, ConfigError,
                "cannot merge histograms with different bucket shapes");
    // Copy out under the source lock, fold in under ours: never hold
    // both at once, so concurrent merges in either direction can't
    // deadlock (at the cost of a momentarily fuzzy view, which scrape
    // semantics tolerate).
    std::vector<std::uint64_t> other_counts;
    double other_total, other_largest;
    std::uint64_t other_n;
    {
        const std::lock_guard<std::mutex> lock(other.mu);
        other_counts = other.counts;
        other_total = other.total;
        other_largest = other.largest;
        other_n = other.n;
    }
    const std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other_counts[i];
    total += other_total;
    largest = std::max(largest, other_largest);
    n += other_n;
}

double
Histogram::percentile(double q) const
{
    const std::lock_guard<std::mutex> lock(mu);
    if (n == 0)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the q-th observation, 1-based, matching the nearest-rank
    // definition the service's old sorted-vector percentiles used.
    const std::uint64_t rank =
        std::max<std::uint64_t>(1,
            static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank) {
            // The +Inf bucket and any bound beyond the exact max report
            // the exact max: never claim a latency nobody observed.
            if (i >= bounds.size())
                return largest;
            return std::min(bounds[i], largest);
        }
    }
    return largest;
}

double
Histogram::max() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return largest;
}

double
Histogram::sum() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return total;
}

std::uint64_t
Histogram::count() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return n;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return counts;
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

MetricsRegistry::Family &
MetricsRegistry::family(const std::string &name, const std::string &help,
                        Kind kind)
{
    for (auto &fam : families) {
        if (fam->name != name)
            continue;
        gds_require(fam->kind == kind, ConfigError,
                    "metric '%s' re-registered as a different type",
                    name.c_str());
        gds_require(fam->help == help, ConfigError,
                    "metric '%s' re-registered with different help text",
                    name.c_str());
        return *fam;
    }
    auto fam = std::make_unique<Family>();
    fam->name = name;
    fam->help = help;
    fam->kind = kind;
    families.push_back(std::move(fam));
    return *families.back();
}

MetricsRegistry::Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    return counter(name, help, "", "");
}

MetricsRegistry::Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const std::string &label_key,
                         const std::string &label_value)
{
    const std::lock_guard<std::mutex> lock(mu);
    Family &fam = family(name, help, Kind::CounterKind);
    if (fam.series.empty()) {
        fam.labelKey = label_key;
    } else {
        gds_require(fam.labelKey == label_key, ConfigError,
                    "counter '%s' label key mismatch: '%s' vs '%s'",
                    name.c_str(), fam.labelKey.c_str(), label_key.c_str());
    }
    for (auto &series : fam.series) {
        if (series.labelValue == label_value)
            return *series.counter;
    }
    gds_require(!label_key.empty() || fam.series.empty(), ConfigError,
                "unlabeled counter '%s' cannot have multiple series",
                name.c_str());
    fam.series.push_back({label_value, std::make_unique<Counter>()});
    return *fam.series.back().counter;
}

void
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       std::function<double()> read)
{
    const std::lock_guard<std::mutex> lock(mu);
    Family &fam = family(name, help, Kind::GaugeKind);
    fam.read = std::move(read);
}

Histogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help,
                           double lowest, double growth, int buckets)
{
    const std::lock_guard<std::mutex> lock(mu);
    Family &fam = family(name, help, Kind::HistogramKind);
    if (!fam.hist)
        fam.hist = std::make_unique<Histogram>(lowest, growth, buckets);
    return *fam.hist;
}

std::string
MetricsRegistry::expose() const
{
    const std::lock_guard<std::mutex> lock(mu);
    // Built with plain appends: GCC 12's -Wrestrict misfires on chained
    // `const char * + std::string` temporaries under -Werror.
    std::string out;
    auto line = [&out](std::initializer_list<std::string> parts) {
        for (const std::string &part : parts)
            out += part;
        out += '\n';
    };
    for (const auto &fam : families) {
        line({"# HELP ", fam->name, " ", fam->help});
        switch (fam->kind) {
          case Kind::CounterKind:
            line({"# TYPE ", fam->name, " counter"});
            for (const auto &series : fam->series) {
                out += fam->name;
                if (!fam->labelKey.empty())
                    line({"{", fam->labelKey, "=\"", series.labelValue,
                          "\"} ", std::to_string(series.counter->value())});
                else
                    line({" ", std::to_string(series.counter->value())});
            }
            break;
          case Kind::GaugeKind:
            line({"# TYPE ", fam->name, " gauge"});
            line({fam->name, " ",
                  renderNumber(fam->read ? fam->read() : 0)});
            break;
          case Kind::HistogramKind: {
            line({"# TYPE ", fam->name, " histogram"});
            const auto counts = fam->hist->bucketCounts();
            const auto &bounds = fam->hist->upperBounds();
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < bounds.size(); ++i) {
                cumulative += counts[i];
                line({fam->name, "_bucket{le=\"", renderNumber(bounds[i]),
                      "\"} ", std::to_string(cumulative)});
            }
            cumulative += counts.back();
            line({fam->name, "_bucket{le=\"+Inf\"} ",
                  std::to_string(cumulative)});
            line({fam->name, "_sum ", renderNumber(fam->hist->sum())});
            line({fam->name, "_count ",
                  std::to_string(fam->hist->count())});
            break;
          }
        }
    }
    return out;
}

} // namespace gds::stats
