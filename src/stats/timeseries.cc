#include "stats/timeseries.hh"

#include <set>

#include "stats/json.hh"

namespace gds::stats
{

void
TimeSeries::setColumns(std::vector<std::string> column_names)
{
    gds_require(cycles.empty(), ConfigError,
                "time-series columns cannot change after rows exist");
    std::set<std::string> seen;
    for (const std::string &n : column_names) {
        gds_require(!n.empty(), ConfigError,
                    "time-series column names must be non-empty");
        gds_require(seen.insert(n).second, ConfigError,
                    "duplicate time-series column '%s'", n.c_str());
    }
    names = std::move(column_names);
    series.assign(names.size(), {});
}

void
TimeSeries::addRow(Cycle cycle, const std::vector<double> &values)
{
    gds_require(values.size() == names.size(), ConfigError,
                "time-series row has %zu values, table has %zu columns",
                values.size(), names.size());
    cycles.push_back(cycle);
    for (std::size_t c = 0; c < values.size(); ++c)
        series[c].push_back(values[c]);
}

void
TimeSeries::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const std::string &n : names)
        os << ',' << n;
    os << '\n';
    os.precision(17);
    for (std::size_t r = 0; r < cycles.size(); ++r) {
        os << cycles[r];
        for (std::size_t c = 0; c < series.size(); ++c)
            os << ',' << series[c][r];
        os << '\n';
    }
}

void
TimeSeries::writeJson(std::ostream &os) const
{
    os.precision(17);
    os << "{\"columns\":[";
    for (std::size_t c = 0; c < names.size(); ++c) {
        if (c != 0)
            os << ',';
        emitJsonString(os, names[c]);
    }
    os << "],\"cycles\":[";
    for (std::size_t r = 0; r < cycles.size(); ++r) {
        if (r != 0)
            os << ',';
        os << cycles[r];
    }
    os << "],\"series\":{";
    for (std::size_t c = 0; c < names.size(); ++c) {
        if (c != 0)
            os << ',';
        emitJsonString(os, names[c]);
        os << ":[";
        for (std::size_t r = 0; r < series[c].size(); ++r) {
            if (r != 0)
                os << ',';
            emitJsonNumber(os, series[c][r]);
        }
        os << ']';
    }
    os << "}}";
}

void
TimeSeries::clear()
{
    cycles.clear();
    for (auto &col : series)
        col.clear();
}

} // namespace gds::stats
