/**
 * @file
 * Service-level metrics: a bounded log-scaled histogram and a
 * counter/gauge/histogram registry with Prometheus text exposition.
 *
 * The simulator core keeps its gem5-style Scalar/Vector/Distribution
 * stats (stats/stats.hh): those are per-run, dumped once at the end, and
 * deliberately lock-free because a single simulated system owns them. The
 * service layer has the opposite profile — many worker threads observing
 * latencies concurrently into state that lives for the daemon's whole
 * life and is scraped while jobs are in flight. This header provides that
 * side:
 *
 *  - Histogram: fixed log-scaled buckets chosen at construction, O(1)
 *    memory forever (replacing the unbounded sorted-vector percentile
 *    tracking the service used to do), thread-safe observe/merge under a
 *    short internal lock, and quantile estimates read from bucket
 *    boundaries.
 *
 *  - MetricsRegistry: named counter families (optionally with one label,
 *    e.g. outcome="completed"), callback gauges sampled at scrape time,
 *    and registered histograms; expose() renders the whole registry in
 *    Prometheus text exposition format (`# HELP`/`# TYPE`,
 *    `_bucket{le=...}`/`_sum`/`_count` for histograms).
 *
 * Counter handles returned by the registry are stable references:
 * callers cache them once and increment lock-free on the hot path. The
 * registry lock is only taken at registration and at scrape.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gds::stats
{

/**
 * A fixed-bucket histogram with exponentially growing upper bounds:
 * bucket i covers values <= lowest * growth^i, plus one implicit +Inf
 * overflow bucket. Bounds are frozen at construction so two histograms
 * with identical shape merge bucket-by-bucket (worker-local histograms
 * folding into a fleet-level one).
 *
 * percentile() returns the upper bound of the bucket where the requested
 * cumulative rank lands — an overestimate by at most one growth factor,
 * which is the standard accuracy/memory trade for log-scaled buckets.
 * The exact maximum is tracked separately since "worst latency ever" is
 * too load-bearing to quantize.
 */
class Histogram
{
  public:
    /**
     * @param lowest upper bound of the first bucket (must be > 0)
     * @param growth per-bucket bound multiplier (must be > 1)
     * @param buckets number of finite buckets (must be >= 1)
     */
    Histogram(double lowest, double growth, int buckets);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one observation (negative values clamp into bucket 0). */
    void observe(double value);

    /** Fold another histogram's counts into this one. The two must have
     *  identical bucket shape (same lowest/growth/bucket count). */
    void merge(const Histogram &other);

    /** Estimated quantile for rank @p q in [0,1]: the upper bound of the
     *  bucket containing the q-th observation, clamped to the exact
     *  maximum. Returns 0 when empty. */
    double percentile(double q) const;

    /** Exact largest observed value (0 when empty). */
    double max() const;

    /** Sum of all observations. */
    double sum() const;

    /** Number of observations. */
    std::uint64_t count() const;

    /** Finite bucket upper bounds, ascending (the +Inf bucket is
     *  implicit). Immutable after construction. */
    const std::vector<double> &upperBounds() const { return bounds; }

    /** Per-bucket counts, size upperBounds().size() + 1: the last entry
     *  is the +Inf overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

  private:
    std::vector<double> bounds;
    mutable std::mutex mu;
    std::vector<std::uint64_t> counts;
    double total = 0;
    double largest = 0;
    std::uint64_t n = 0;
};

/**
 * A process-wide registry of named metrics with Prometheus text
 * exposition. Metric families are exposed in registration order so the
 * scrape output is deterministic (golden-testable).
 */
class MetricsRegistry
{
  public:
    /** A monotonically increasing counter. Stable reference; inc() is a
     *  single relaxed atomic add. */
    class Counter
    {
      public:
        void inc(std::uint64_t by = 1)
        {
            value_.fetch_add(by, std::memory_order_relaxed);
        }
        std::uint64_t value() const
        {
            return value_.load(std::memory_order_relaxed);
        }

      private:
        std::atomic<std::uint64_t> value_{0};
    };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register (or look up) an unlabeled counter. Re-registering the
     * same name returns the same Counter; @p help must match the first
     * registration (ConfigError otherwise).
     */
    Counter &counter(const std::string &name, const std::string &help);

    /**
     * Register (or look up) one labeled series of a counter family,
     * e.g. counter("gds_svc_jobs_total", "...", "outcome", "completed").
     * All series of a family share one label key.
     */
    Counter &counter(const std::string &name, const std::string &help,
                     const std::string &label_key,
                     const std::string &label_value);

    /**
     * Register a gauge whose value is sampled by calling @p read at
     * scrape time. The callback must not call back into this registry
     * (expose() holds the registry lock while sampling).
     */
    void gauge(const std::string &name, const std::string &help,
               std::function<double()> read);

    /** Register a histogram with the given bucket shape; returns a
     *  stable reference for direct observe() calls. */
    Histogram &histogram(const std::string &name, const std::string &help,
                         double lowest, double growth, int buckets);

    /** Render every registered metric in Prometheus text exposition
     *  format (ends with a trailing newline). */
    std::string expose() const;

  private:
    enum class Kind { CounterKind, GaugeKind, HistogramKind };

    struct Series
    {
        std::string labelValue; // empty for unlabeled counters
        std::unique_ptr<Counter> counter;
    };

    struct Family
    {
        std::string name;
        std::string help;
        Kind kind;
        std::string labelKey; // counters only; empty when unlabeled
        std::vector<Series> series;
        std::function<double()> read;       // gauges
        std::unique_ptr<Histogram> hist;    // histograms
    };

    Family &family(const std::string &name, const std::string &help,
                   Kind kind);

    mutable std::mutex mu;
    std::vector<std::unique_ptr<Family>> families;
};

} // namespace gds::stats
