/**
 * @file
 * JSON export of a statistics tree, for machine consumption of run
 * results (plotting scripts, CI dashboards).
 */

#pragma once

#include <ostream>
#include <string>

#include "stats/stats.hh"

namespace gds::stats
{

/**
 * Serialize a group (and all children) as a JSON object:
 * scalars as numbers, vectors as arrays, distributions as
 * {bucketLabel: count} objects.
 */
void dumpJson(const Group &group, std::ostream &os);

/** Emit @p s as a quoted, escaped JSON string. */
void emitJsonString(std::ostream &os, const std::string &s);

/** Emit @p v as a JSON number (non-finite values become null). */
void emitJsonNumber(std::ostream &os, double v);

/**
 * Validate @p text as one complete RFC 8259 JSON value (a minimal
 * recursive-descent parser that builds nothing). Used by the telemetry
 * tests to prove traces and manifests load in real consumers, and cheap
 * enough to call on every dump in debug builds.
 *
 * @param error when non-null, receives a "byte N: what" message on failure
 * @return true iff @p text parses cleanly with no trailing garbage
 */
bool validateJson(const std::string &text, std::string *error = nullptr);

} // namespace gds::stats
