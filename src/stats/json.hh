/**
 * @file
 * JSON export of a statistics tree, for machine consumption of run
 * results (plotting scripts, CI dashboards).
 */

#pragma once

#include <ostream>
#include <string>

#include "stats/stats.hh"

namespace gds::stats
{

/**
 * Serialize a group (and all children) as a JSON object:
 * scalars as numbers, vectors as arrays, distributions as
 * {bucketLabel: count} objects.
 */
void dumpJson(const Group &group, std::ostream &os);

/** Emit @p s as a quoted, escaped JSON string. */
void emitJsonString(std::ostream &os, const std::string &s);

/** Emit @p v as a JSON number (non-finite values become null). */
void emitJsonNumber(std::ostream &os, double v);

} // namespace gds::stats
