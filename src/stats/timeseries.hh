/**
 * @file
 * Columnar cycle-stamped time series: the storage behind the interval
 * sampler (src/obs). Each column is a named series of doubles; rows are
 * appended with the simulated cycle they were sampled at and exported as
 * CSV (one row per sample, for spreadsheet/pandas plotting) or JSON
 * (columnar, next to stats::dumpJson).
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace gds::stats
{

/** A fixed-column, append-only table of (cycle, values...) samples. */
class TimeSeries
{
  public:
    TimeSeries() = default;

    /**
     * Fix the column layout. May only be called while the series is
     * empty; the sampler seals its probe list at the first snapshot.
     * @throws ConfigError on duplicate or empty column names, or when
     *         rows have already been recorded
     */
    void setColumns(std::vector<std::string> names);

    const std::vector<std::string> &columns() const { return names; }
    std::size_t columnCount() const { return names.size(); }
    std::size_t rowCount() const { return cycles.size(); }
    bool empty() const { return cycles.empty(); }

    /**
     * Append one sample row.
     * @throws ConfigError when @p values disagrees with the column count
     */
    void addRow(Cycle cycle, const std::vector<double> &values);

    Cycle cycleAt(std::size_t row) const { return cycles.at(row); }
    double value(std::size_t row, std::size_t col) const
    {
        return series.at(col).at(row);
    }

    /** One whole column (e.g. for a bandwidth derivative). */
    const std::vector<double> &column(std::size_t col) const
    {
        return series.at(col);
    }

    /** CSV export: "cycle,<col>,..." header then one line per row. */
    void writeCsv(std::ostream &os) const;

    /** Columnar JSON: {"columns": [...], "cycles": [...],
     *  "series": {"<col>": [...], ...}}. */
    void writeJson(std::ostream &os) const;

    void clear();

  private:
    std::vector<std::string> names;
    std::vector<Cycle> cycles;
    std::vector<std::vector<double>> series; ///< one vector per column
};

} // namespace gds::stats
