#include "stats/json.hh"

#include <cmath>
#include <cstdio>

namespace gds::stats
{

void
emitJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v)) {
        os << v;
    } else {
        os << "null";
    }
}

void
emitJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const unsigned char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            // RFC 8259: all other control characters must be \u-escaped.
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

namespace
{

void
emitNumber(std::ostream &os, double v)
{
    emitJsonNumber(os, v);
}

void
emitString(std::ostream &os, const std::string &s)
{
    emitJsonString(os, s);
}

void
dumpGroup(const Group &group, std::ostream &os)
{
    os << '{';
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ',';
        first = false;
    };
    for (const Stat *s : group.stats()) {
        sep();
        emitString(os, s->name());
        os << ':';
        if (const auto *scalar = dynamic_cast<const Scalar *>(s)) {
            emitNumber(os, scalar->value());
        } else if (const auto *vec = dynamic_cast<const Vector *>(s)) {
            os << '[';
            for (std::size_t i = 0; i < vec->size(); ++i) {
                if (i)
                    os << ',';
                emitNumber(os, vec->at(i));
            }
            os << ']';
        } else if (const auto *dist =
                       dynamic_cast<const Distribution *>(s)) {
            os << '{';
            for (std::size_t b = 0; b < Distribution::numBuckets(); ++b) {
                if (b)
                    os << ',';
                emitString(os, Distribution::bucketLabel(b));
                os << ':' << dist->bucketCount(b);
            }
            os << '}';
        } else {
            os << "null";
        }
    }
    for (const Group *child : group.childGroups()) {
        sep();
        emitString(os, child->name());
        os << ':';
        dumpGroup(*child, os);
    }
    os << '}';
}

} // namespace

void
dumpJson(const Group &group, std::ostream &os)
{
    dumpGroup(group, os);
    os << '\n';
}

} // namespace gds::stats
