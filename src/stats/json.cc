#include "stats/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace gds::stats
{

void
emitJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v)) {
        os << v;
    } else {
        os << "null";
    }
}

void
emitJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const unsigned char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            // RFC 8259: all other control characters must be \u-escaped.
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

namespace
{

void
emitNumber(std::ostream &os, double v)
{
    emitJsonNumber(os, v);
}

void
emitString(std::ostream &os, const std::string &s)
{
    emitJsonString(os, s);
}

void
dumpGroup(const Group &group, std::ostream &os)
{
    os << '{';
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ',';
        first = false;
    };
    for (const Stat *s : group.stats()) {
        sep();
        emitString(os, s->name());
        os << ':';
        if (const auto *scalar = dynamic_cast<const Scalar *>(s)) {
            emitNumber(os, scalar->value());
        } else if (const auto *vec = dynamic_cast<const Vector *>(s)) {
            os << '[';
            for (std::size_t i = 0; i < vec->size(); ++i) {
                if (i)
                    os << ',';
                emitNumber(os, vec->at(i));
            }
            os << ']';
        } else if (const auto *dist =
                       dynamic_cast<const Distribution *>(s)) {
            os << '{';
            for (std::size_t b = 0; b < Distribution::numBuckets(); ++b) {
                if (b)
                    os << ',';
                emitString(os, Distribution::bucketLabel(b));
                os << ':' << dist->bucketCount(b);
            }
            os << '}';
        } else {
            os << "null";
        }
    }
    for (const Group *child : group.childGroups()) {
        sep();
        emitString(os, child->name());
        os << ':';
        dumpGroup(*child, os);
    }
    os << '}';
}

} // namespace

void
dumpJson(const Group &group, std::ostream &os)
{
    dumpGroup(group, os);
    os << '\n';
}

// ---------------------------------------------------------------------
// Minimal RFC 8259 validator.
// ---------------------------------------------------------------------

namespace
{

/** Cursor over the text being validated; fail() records the first error. */
struct JsonCursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = "byte " + std::to_string(pos) + ": " + what;
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    bool
    consume(char expected)
    {
        if (atEnd() || text[pos] != expected) {
            return fail(std::string("expected '") + expected + "'");
        }
        ++pos;
        return true;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (atEnd() || text[pos] != *p)
                return fail(std::string("bad literal, expected ") + word);
            ++pos;
        }
        return true;
    }

    bool parseValue(unsigned depth);
    bool parseString();
    bool parseNumber();
    bool parseObject(unsigned depth);
    bool parseArray(unsigned depth);
};

bool
JsonCursor::parseString()
{
    if (!consume('"'))
        return false;
    while (true) {
        if (atEnd())
            return fail("unterminated string");
        const unsigned char c = static_cast<unsigned char>(text[pos]);
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c < 0x20)
            return fail("unescaped control character in string");
        if (c == '\\') {
            ++pos;
            if (atEnd())
                return fail("unterminated escape");
            const char e = text[pos];
            if (e == 'u') {
                for (unsigned i = 0; i < 4; ++i) {
                    ++pos;
                    if (atEnd() || !std::isxdigit(
                            static_cast<unsigned char>(text[pos])))
                        return fail("bad \\u escape");
                }
            } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                       e != 'f' && e != 'n' && e != 'r' && e != 't') {
                return fail("bad escape character");
            }
        }
        ++pos;
    }
}

bool
JsonCursor::parseNumber()
{
    if (!atEnd() && peek() == '-')
        ++pos;
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number");
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos;
    if (!atEnd() && peek() == '.') {
        ++pos;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad fraction");
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
        ++pos;
        if (!atEnd() && (peek() == '+' || peek() == '-'))
            ++pos;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad exponent");
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
    }
    return true;
}

bool
JsonCursor::parseObject(unsigned depth)
{
    if (!consume('{'))
        return false;
    skipWs();
    if (!atEnd() && peek() == '}') {
        ++pos;
        return true;
    }
    while (true) {
        skipWs();
        if (!parseString())
            return false;
        skipWs();
        if (!consume(':'))
            return false;
        if (!parseValue(depth))
            return false;
        skipWs();
        if (atEnd())
            return fail("unterminated object");
        if (peek() == ',') {
            ++pos;
            continue;
        }
        return consume('}');
    }
}

bool
JsonCursor::parseArray(unsigned depth)
{
    if (!consume('['))
        return false;
    skipWs();
    if (!atEnd() && peek() == ']') {
        ++pos;
        return true;
    }
    while (true) {
        if (!parseValue(depth))
            return false;
        skipWs();
        if (atEnd())
            return fail("unterminated array");
        if (peek() == ',') {
            ++pos;
            continue;
        }
        return consume(']');
    }
}

bool
JsonCursor::parseValue(unsigned depth)
{
    if (depth > 512)
        return fail("nesting too deep");
    skipWs();
    if (atEnd())
        return fail("expected a value");
    switch (peek()) {
      case '{':
        return parseObject(depth + 1);
      case '[':
        return parseArray(depth + 1);
      case '"':
        return parseString();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return parseNumber();
    }
}

} // namespace

bool
validateJson(const std::string &text, std::string *error)
{
    JsonCursor cur{text, 0, {}};
    bool ok = cur.parseValue(0);
    if (ok) {
        cur.skipWs();
        if (!cur.atEnd())
            ok = cur.fail("trailing characters after the JSON value");
    }
    if (!ok && error != nullptr)
        *error = cur.error;
    return ok;
}

} // namespace gds::stats
