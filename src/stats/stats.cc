#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>
#include <numeric>

#include "common/error.hh"

namespace gds::stats
{

Stat::Stat(Group *parent, std::string stat_name, std::string stat_desc)
    : _name(std::move(stat_name)), _desc(std::move(stat_desc))
{
    gds_require(parent != nullptr, ConfigError,
                "stat '%s' needs a parent group",
               _name.c_str());
    parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(52) << (prefix + name())
       << std::right << std::setw(16) << _value
       << "  # " << desc() << "\n";
}

double
Vector::total() const
{
    return std::accumulate(values.begin(), values.end(), 0.0);
}

double
Vector::max() const
{
    return values.empty() ? 0.0
                          : *std::max_element(values.begin(), values.end());
}

double
Vector::min() const
{
    return values.empty() ? 0.0
                          : *std::min_element(values.begin(), values.end());
}

double
Vector::mean() const
{
    return values.empty() ? 0.0 : total() / static_cast<double>(values.size());
}

void
Vector::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        os << std::left << std::setw(52)
           << (prefix + name() + "[" + std::to_string(i) + "]")
           << std::right << std::setw(16) << values[i]
           << "  # " << desc() << "\n";
    }
}

Distribution::Distribution(Group *parent, std::string stat_name,
                           std::string stat_desc)
    : Stat(parent, std::move(stat_name), std::move(stat_desc)),
      buckets(numBuckets(), 0)
{}

void
Distribution::sample(std::uint64_t v)
{
    // Paper's Fig. 2 buckets: [0,0] [1,2] [3,4] [5,8] [9,16] [17,32]
    // [33,64] and >64.
    std::size_t b;
    if (v == 0)
        b = 0;
    else if (v <= 2)
        b = 1;
    else if (v <= 4)
        b = 2;
    else if (v <= 8)
        b = 3;
    else if (v <= 16)
        b = 4;
    else if (v <= 32)
        b = 5;
    else if (v <= 64)
        b = 6;
    else
        b = 7;
    ++buckets[b];
    ++samples;
    sum += v;
    maxSample = std::max(maxSample, v);
}

std::string
Distribution::bucketLabel(std::size_t b)
{
    static const char *labels[] = {"[0,0]",   "[1,2]",   "[3,4]",  "[5,8]",
                                   "[9,16]",  "[17,32]", "[33,64]", ">64"};
    gds_require(b < numBuckets(), InternalError, "bucket %zu out of range", b);
    return labels[b];
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t b = 0; b < numBuckets(); ++b) {
        os << std::left << std::setw(52)
           << (prefix + name() + "::" + bucketLabel(b))
           << std::right << std::setw(16) << buckets[b]
           << "  # " << desc() << "\n";
    }
}

void
Distribution::reset()
{
    buckets.assign(numBuckets(), 0);
    samples = 0;
    sum = 0;
    maxSample = 0;
}

Group::Group(Group *parent_group, std::string group_name)
    : parent(parent_group), _name(std::move(group_name))
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

std::string
Group::path() const
{
    if (!parent)
        return _name;
    std::string parent_path = parent->path();
    return parent_path.empty() ? _name : parent_path + "." + _name;
}

void
Group::addStat(Stat *s)
{
    auto [it, inserted] = statMap.emplace(s->name(), s);
    gds_require(inserted, ConfigError, "duplicate stat '%s' in group '%s'",
               s->name().c_str(), _name.c_str());
    statList.push_back(s);
}

void
Group::addChild(Group *g)
{
    children.push_back(g);
}

void
Group::removeChild(Group *g)
{
    std::erase(children, g);
}

void
Group::dump(std::ostream &os) const
{
    const std::string prefix = path().empty() ? "" : path() + ".";
    for (const Stat *s : statList)
        s->dump(os, prefix);
    for (const Group *g : children)
        g->dump(os);
}

void
Group::resetAll()
{
    for (Stat *s : statList)
        s->reset();
    for (Group *g : children)
        g->resetAll();
}

const Stat *
Group::find(const std::string &dotted_path) const
{
    auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        auto it = statMap.find(dotted_path);
        return it == statMap.end() ? nullptr : it->second;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string rest = dotted_path.substr(dot + 1);
    for (const Group *g : children) {
        if (g->name() == head)
            return g->find(rest);
    }
    return nullptr;
}

const Scalar &
Group::scalar(const std::string &dotted_path) const
{
    const auto *s = dynamic_cast<const Scalar *>(find(dotted_path));
    gds_require(s, ConfigError, "no scalar stat '%s' under group '%s'",
               dotted_path.c_str(), _name.c_str());
    return *s;
}

const Vector &
Group::vector(const std::string &dotted_path) const
{
    const auto *v = dynamic_cast<const Vector *>(find(dotted_path));
    gds_require(v, ConfigError, "no vector stat '%s' under group '%s'",
               dotted_path.c_str(), _name.c_str());
    return *v;
}

} // namespace gds::stats
