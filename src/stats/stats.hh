/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's stats package.
 *
 * Every simulator component owns a stats::Group and registers named
 * scalars / vectors / distributions against it. Groups form a tree that can
 * be dumped as a human-readable table or queried programmatically by the
 * experiment harness (which is how every figure of the paper is produced).
 */

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"

namespace gds::stats
{

class Group;

/** Common base: a named, described statistic belonging to a group. */
class Stat
{
  public:
    Stat(Group *parent, std::string stat_name, std::string stat_desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Render this stat's rows into the dump. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset the statistic to its initial state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A single accumulating value. */
class Scalar : public Stat
{
  public:
    Scalar(Group *parent, std::string stat_name, std::string stat_desc)
        : Stat(parent, std::move(stat_name), std::move(stat_desc)) {}

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** A fixed-size vector of accumulating values (e.g. one per PE). */
class Vector : public Stat
{
  public:
    Vector(Group *parent, std::string stat_name, std::string stat_desc,
           std::size_t size)
        : Stat(parent, std::move(stat_name), std::move(stat_desc)),
          values(size, 0.0)
    {}

    double &operator[](std::size_t i)
    {
        // gds-lint: allow(no-naked-assert) per-event hot path; stat
        // vectors are sized at construction and indexed by model code
        gds_assert(i < values.size(), "vector stat index %zu out of %zu",
                   i, values.size());
        return values[i];
    }

    double at(std::size_t i) const { return values.at(i); }
    std::size_t size() const { return values.size(); }
    double total() const;
    double max() const;
    double min() const;
    double mean() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { values.assign(values.size(), 0.0); }

  private:
    std::vector<double> values;
};

/**
 * A sampled distribution over power-of-two buckets, used for degree
 * histograms and latency profiles (Fig. 2 uses exactly these buckets:
 * [0,0] [1,2] [3,4] [5,8] [9,16] [17,32] [33,64] and >64).
 */
class Distribution : public Stat
{
  public:
    Distribution(Group *parent, std::string stat_name, std::string stat_desc);

    /** Record one sample of the given magnitude. */
    void sample(std::uint64_t v);

    std::uint64_t count() const { return samples; }
    std::uint64_t bucketCount(std::size_t b) const { return buckets.at(b); }
    static std::size_t numBuckets() { return 8; }
    static std::string bucketLabel(std::size_t b);

    /** Raw accumulators, exposed for mid-run checkpointing. */
    std::uint64_t sampleSum() const { return sum; }
    std::uint64_t maxSampled() const { return maxSample; }

    /**
     * Checkpoint restore: overwrite the raw accumulators wholesale.
     * @throws CheckpointError when @p bucket_counts has the wrong arity
     * (the checkpoint was produced by an incompatible build).
     */
    void
    restoreRaw(const std::vector<std::uint64_t> &bucket_counts,
               std::uint64_t sample_count, std::uint64_t sample_sum,
               std::uint64_t max_sample)
    {
        gds_require(bucket_counts.size() == buckets.size(), CheckpointError,
                    "distribution '%s' restore carries %zu buckets, "
                    "this build has %zu",
                    name().c_str(), bucket_counts.size(), buckets.size());
        buckets = bucket_counts;
        samples = sample_count;
        sum = sample_sum;
        maxSample = max_sample;
    }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    std::uint64_t maxSample = 0;
};

/**
 * A node in the stats hierarchy. Components own one and register stats and
 * child groups against it; the tree is dumped depth-first.
 */
class Group
{
  public:
    Group(Group *parent, std::string group_name);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return _name; }

    /** Fully qualified dotted path from the root. */
    std::string path() const;

    /** Dump this group and all children. */
    void dump(std::ostream &os) const;

    /** Reset every stat beneath this group. */
    void resetAll();

    /** Find a scalar by dotted path relative to this group; panics if absent. */
    const Scalar &scalar(const std::string &dotted_path) const;

    /** Find a vector by dotted path relative to this group; panics if absent. */
    const Vector &vector(const std::string &dotted_path) const;

    /** Stats registered directly on this group (tree traversal). */
    const std::vector<Stat *> &stats() const { return statList; }
    /** Child groups (tree traversal). */
    const std::vector<Group *> &childGroups() const { return children; }

  private:
    friend class Stat;
    void addStat(Stat *s);
    void addChild(Group *g);
    void removeChild(Group *g);
    const Stat *find(const std::string &dotted_path) const;

    Group *parent;
    std::string _name;
    std::vector<Stat *> statList;
    std::map<std::string, Stat *> statMap;
    std::vector<Group *> children;
};

} // namespace gds::stats
