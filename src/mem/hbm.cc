#include "mem/hbm.hh"

#include "common/bitutil.hh"
#include "obs/trace.hh"
#include "sim/checkpoint.hh"

namespace gds::mem
{

namespace
{

/**
 * Expose the protected heap container of a std::priority_queue so
 * checkpoints copy its layout verbatim. Rebuilding the heap on restore
 * (make_heap, or draining and re-pushing) may reorder elements that
 * compare equal — Completion ordering is by time only — and the pop
 * order among equal-time completions is heap-layout-dependent, which
 * would break bit-exact resume.
 */
template <typename T, typename C, typename Cmp>
struct PqOpener : std::priority_queue<T, C, Cmp>
{
    static const C &
    container(const std::priority_queue<T, C, Cmp> &q)
    {
        return q.*&PqOpener::c;
    }

    static C &
    container(std::priority_queue<T, C, Cmp> &q)
    {
        return q.*&PqOpener::c;
    }
};

constexpr std::uint32_t kHbmMarker = 0x48424d31; // "HBM1"

} // namespace

Hbm::Hbm(const HbmConfig &config, sim::Component *parent)
    : sim::Component("hbm", parent),
      cfg(config),
      statReadBytes(&statsGroup(), "readBytes", "bytes read from HBM"),
      statWriteBytes(&statsGroup(), "writeBytes", "bytes written to HBM"),
      statRowHits(&statsGroup(), "rowHits", "row-buffer hits"),
      statRowMisses(&statsGroup(), "rowMisses", "row-buffer misses"),
      statRefreshes(&statsGroup(), "refreshes", "refresh commands issued"),
      statDataBusBusy(&statsGroup(), "dataBusBusy",
                      "channel-cycles of data bus occupancy"),
      statTransactions(&statsGroup(), "transactions",
                       "32 B transactions serviced"),
      statOccupancySum(&statsGroup(), "occupancySum",
                       "sum over cycles of in-flight transactions"),
      statLatencySum(&statsGroup(), "latencySum",
                     "total request latency in cycles"),
      statRequests(&statsGroup(), "requests", "completed requests"),
      statFaultDropped(&statsGroup(), "faultDropped",
                       "responses dropped by fault injection"),
      statFaultDelayed(&statsGroup(), "faultDelayed",
                       "responses delayed by fault injection"),
      statFaultRejected(&statsGroup(), "faultRejected",
                        "requests refused by fault injection")
{
    gds_assert(isPow2(cfg.txBytes), "txBytes must be a power of two");
    gds_assert(cfg.rowBytes % cfg.txBytes == 0,
               "rowBytes must be a multiple of txBytes");
    const std::uint64_t tx_per_row = cfg.rowBytes / cfg.txBytes;
    pow2Geometry = isPow2(cfg.numChannels) && isPow2(tx_per_row) &&
                   isPow2(cfg.banksPerChannel);
    if (pow2Geometry) {
        channelShift = log2Floor(cfg.numChannels);
        rowShift = log2Floor(tx_per_row);
        bankShift = log2Floor(cfg.banksPerChannel);
    }
    channels.resize(cfg.numChannels);
    for (unsigned ch = 0; ch < cfg.numChannels; ++ch) {
        channels[ch].banks.resize(cfg.banksPerChannel);
        // Stagger refresh across channels to avoid artificial beats.
        channels[ch].nextRefreshAt =
            cfg.tRefi / cfg.banksPerChannel / cfg.numChannels * (ch + 1);
    }
}

void
Hbm::mapAddress(Addr tx_addr, unsigned &channel, std::uint32_t &bank,
                std::uint64_t &row) const
{
    // Fine-grained channel interleave at transaction granularity: a
    // sequential stream spreads across all channels, and within a channel
    // walks consecutive columns of one row before moving on (near-perfect
    // row locality for streams, row misses for random access).
    if (pow2Geometry) {
        channel = static_cast<unsigned>(tx_addr & (cfg.numChannels - 1));
        const std::uint64_t rowGlobal = (tx_addr >> channelShift) >> rowShift;
        bank = static_cast<std::uint32_t>(rowGlobal &
                                          (cfg.banksPerChannel - 1));
        row = rowGlobal >> bankShift;
        return;
    }
    channel = static_cast<unsigned>(tx_addr % cfg.numChannels);
    const std::uint64_t local = tx_addr / cfg.numChannels;
    const std::uint64_t txPerRow = cfg.rowBytes / cfg.txBytes;
    const std::uint64_t rowGlobal = local / txPerRow;
    bank = static_cast<std::uint32_t>(rowGlobal % cfg.banksPerChannel);
    row = rowGlobal / cfg.banksPerChannel;
}

bool
Hbm::access(Addr addr, unsigned bytes, bool is_write, std::uint64_t tag,
            HbmPort *port)
{
    gds_assert(bytes > 0, "zero-length memory request");
    gds_assert(port != nullptr, "request needs a response port");

    // Injected admission backpressure: refuse like a full queue would.
    if (fault && fault->rejectRequest()) {
        ++statFaultRejected;
        if (obs::Tracer *t = obs::activeTracer())
            t->instant(t->track(tracePath()), "fault:reject", now);
        return false;
    }

    const Addr first_tx = addr / cfg.txBytes;
    const Addr last_tx = (addr + bytes - 1) / cfg.txBytes;
    const unsigned tx_count = static_cast<unsigned>(last_tx - first_tx + 1);

    // Admission: every target channel must have room. Transactions of one
    // request round-robin over channels, so a request no wider than the
    // channel count puts exactly one transaction on each target channel
    // and admission needs no demand histogram at all.
    if (tx_count <= cfg.numChannels) {
        for (Addr tx = first_tx; tx <= last_tx; ++tx) {
            if (channels[txChannel(tx)].queue.size() >= cfg.queueDepth)
                return false;
        }
    } else {
        demandScratch.assign(cfg.numChannels, 0);
        for (Addr tx = first_tx; tx <= last_tx; ++tx)
            ++demandScratch[txChannel(tx)];
        for (unsigned ch = 0; ch < cfg.numChannels; ++ch) {
            if (channels[ch].queue.size() + demandScratch[ch] >
                cfg.queueDepth)
                return false;
        }
    }

    // Allocate a request slot.
    std::uint32_t index;
    if (!freeList.empty()) {
        index = freeList.back();
        freeList.pop_back();
        requests[index] = Request{tag, port, tx_count, is_write, now};
    } else {
        index = static_cast<std::uint32_t>(requests.size());
        requests.push_back(Request{tag, port, tx_count, is_write, now});
    }
    requests[index].queuedTx = tx_count;
    port->_inflight += 1;

    for (Addr tx = first_tx; tx <= last_tx; ++tx) {
        unsigned channel;
        std::uint32_t bank;
        std::uint64_t row;
        mapAddress(tx, channel, bank, row);
        channels[channel].queue.push_back(Transaction{index, bank, row});
    }
    inflightTx += tx_count;
    queuedTxTotal += tx_count;

    // Traffic is accounted at transaction granularity: the device always
    // moves whole 32 B bursts, so a 40 B request costs 64 B of bandwidth.
    const double moved = static_cast<double>(tx_count) * cfg.txBytes;
    if (is_write)
        statWriteBytes += moved;
    else
        statReadBytes += moved;
    return true;
}

void
Hbm::serviceChannel(unsigned ch)
{
    Channel &channel = channels[ch];

    // Staggered per-bank refresh (HBM REFpb): one bank at a time goes
    // unavailable for tRfcPerBank while the rest of the channel keeps
    // serving, every tREFI / banksPerChannel cycles.
    if (now >= channel.nextRefreshAt) {
        Bank &bank = channel.banks[channel.refreshBank];
        bank.openRow = noRow;
        bank.nextReady = std::max(bank.nextReady, now + cfg.tRfcPerBank);
        channel.refreshBank =
            (channel.refreshBank + 1) % cfg.banksPerChannel;
        channel.nextRefreshAt += cfg.tRefi / cfg.banksPerChannel;
        ++statRefreshes;
    }
    if (channel.queue.empty())
        return;

    // FR-FCFS: prefer the oldest row hit within the lookahead window,
    // otherwise the oldest transaction whose bank is ready and whose
    // activate is allowed by tRRD.
    const bool can_activate = now >= channel.nextActivateAt;
    const std::size_t window =
        std::min<std::size_t>(channel.queue.size(), cfg.frfcfsWindow);
    std::size_t pick = window; // sentinel: nothing issuable
    std::size_t oldest_miss = window;
    for (std::size_t i = 0; i < window; ++i) {
        const Transaction &tx = channel.queue[i];
        const Bank &bank = channel.banks[tx.bank];
        if (bank.nextReady > now)
            continue;
        if (bank.openRow == tx.row) {
            pick = i;
            break;
        }
        if (can_activate && oldest_miss == window)
            oldest_miss = i;
    }
    if (pick == window)
        pick = oldest_miss;
    if (pick == window)
        return; // no bank ready this cycle

    const Transaction tx = channel.queue[pick];
    channel.queue.erase(channel.queue.begin() +
                        static_cast<std::ptrdiff_t>(pick));

    Bank &bank = channel.banks[tx.bank];
    Cycle column_at;
    if (bank.openRow == tx.row) {
        ++statRowHits;
        column_at = now;
    } else {
        ++statRowMisses;
        const Cycle precharge = bank.openRow == noRow ? 0 : cfg.tRp;
        column_at = now + precharge + cfg.tRcd;
        bank.openRow = tx.row;
        channel.nextActivateAt = now + cfg.tRrd;
    }
    const Cycle data_start =
        std::max(column_at + cfg.tCl, channel.busFreeAt);
    const Cycle done = data_start + cfg.tBurst;
    channel.busFreeAt = done;
    bank.nextReady = column_at + cfg.tCcd;
    statDataBusBusy += static_cast<double>(cfg.tBurst);
    ++statTransactions;
    completions.push(Completion{done, tx.requestIndex});

    // Once the last transaction issues, the request's delivery cycle is
    // fixed: from here on only that cycle (not every burst landing) is a
    // visible event for the fast-forward horizon.
    Request &req = requests[tx.requestIndex];
    if (done > req.finishAt)
        req.finishAt = done;
    gds_assert(req.queuedTx > 0, "issued more transactions than queued");
    --queuedTxTotal;
    if (--req.queuedTx == 0)
        requestFinishes.push(Completion{req.finishAt, tx.requestIndex});
}

void
Hbm::finishCompletions()
{
    while (!completions.empty() && completions.top().at <= now) {
        const std::uint32_t index = completions.top().requestIndex;
        completions.pop();
        Request &req = requests[index];
        gds_assert(req.pendingTx > 0, "double completion");
        --inflightTx;
        if (--req.pendingTx != 0)
            continue;
        if (fault && !req.faultChecked) {
            req.faultChecked = true;
            if (fault->dropResponse()) {
                // The response is lost on the wire: the requester keeps
                // waiting (its port still reports the request in flight),
                // which the run watchdog must catch.
                ++statFaultDropped;
                if (obs::Tracer *t = obs::activeTracer())
                    t->instant(t->track(tracePath()), "fault:drop", now);
                freeList.push_back(index);
                continue;
            }
            if (const Cycle delay = fault->responseDelay()) {
                ++statFaultDelayed;
                if (obs::Tracer *t = obs::activeTracer())
                    t->instant(t->track(tracePath()), "fault:delay", now);
                req.pendingTx = 1;
                ++inflightTx;
                completions.push(Completion{now + delay, index});
                requestFinishes.push(Completion{now + delay, index});
                continue;
            }
        }
        req.port->responses.push_back(req.tag);
        req.port->_inflight -= 1;
        statLatencySum += static_cast<double>(now - req.issuedAt);
        ++statRequests;
        progressed(now);
        freeList.push_back(index);
    }
}

void
Hbm::tick()
{
    finishCompletions();
    // Matured finish events were acted on just now (response delivered,
    // or superseded by a delayed-fault redelivery pushed at the deferred
    // cycle); drop them so the horizon never reports a stale event.
    while (!requestFinishes.empty() && requestFinishes.top().at <= now)
        requestFinishes.pop();
    for (unsigned ch = 0; ch < cfg.numChannels; ++ch) {
        // Nothing queued and no refresh due: the channel provably does
        // nothing this cycle, so skip the call entirely.
        if (channels[ch].queue.empty() && now < channels[ch].nextRefreshAt)
            continue;
        serviceChannel(ch);
    }
    statOccupancySum += static_cast<double>(inflightTx);
    ++now;
}

Cycle
Hbm::nextEventCycle() const
{
    // The tick i cycles from now runs with the local clock at now + i - 1,
    // so an event gated at absolute cycle G is reached by tick G - now + 1.
    // Only request-finishing completions are visible events: the bursts a
    // multi-transaction request lands along the way merely decrement its
    // pending count, which skipCycles() replays in bulk.
    Cycle horizon = kNeverEvent;
    if (!requestFinishes.empty()) {
        const Cycle at = requestFinishes.top().at;
        horizon = at > now ? at - now + 1 : 1;
    }
    if (queuedTxTotal == 0)
        return horizon; // nothing waiting to issue: O(1) in a pure wait
    for (const Channel &channel : channels) {
        if (channel.queue.empty())
            continue;
        const std::size_t window =
            std::min<std::size_t>(channel.queue.size(), cfg.frfcfsWindow);
        for (std::size_t i = 0; i < window; ++i) {
            const Transaction &tx = channel.queue[i];
            const Bank &bank = channel.banks[tx.bank];
            Cycle gate = bank.nextReady;
            if (bank.openRow != tx.row)
                gate = std::max(gate, channel.nextActivateAt);
            // A refresh inside the window can only delay this further
            // (close the row, raise nextReady), so the pre-refresh gate
            // is a safe lower bound.
            horizon =
                std::min(horizon, gate > now ? gate - now + 1 : Cycle{1});
            if (horizon == 1)
                return 1;
        }
    }
    return horizon;
}

void
Hbm::skipCycles(Cycle cycles)
{
    if (cycles == 0)
        return;
    const Cycle last = now + cycles - 1;
    gds_assert(requestFinishes.empty() || requestFinishes.top().at > last,
               "fast-forward across a matured HBM request completion");

    // Retire the intermediate transaction completions maturing inside the
    // window exactly as the skipped ticks would have, integrating the
    // occupancy stat piecewise around each retirement. None of them can
    // finish a request (the assert above), so no port response, fault
    // draw, latency stat or progress mark is due.
    Cycle cursor = now; // next cycle whose occupancy is unaccounted
    while (!completions.empty() && completions.top().at <= last) {
        const Cycle at = completions.top().at;
        statOccupancySum += static_cast<double>(at - cursor) *
                            static_cast<double>(inflightTx);
        cursor = at;
        while (!completions.empty() && completions.top().at == at) {
            Request &req = requests[completions.top().requestIndex];
            completions.pop();
            gds_assert(req.pendingTx > 1,
                       "request-finishing completion inside a skipped "
                       "window");
            --req.pendingTx;
            --inflightTx;
        }
    }
    statOccupancySum += static_cast<double>(now + cycles - cursor) *
                        static_cast<double>(inflightTx);

    // Replay the refreshes naive ticking would have issued inside the
    // window, at their exact scheduled cycles; nothing else can happen in
    // a window nextEventCycle() declared pure. nextRefreshAt >= now here
    // because the preceding tick fired every refresh due by then.
    for (Channel &channel : channels) {
        while (channel.nextRefreshAt <= last) {
            Bank &bank = channel.banks[channel.refreshBank];
            bank.openRow = noRow;
            bank.nextReady = std::max(
                bank.nextReady, channel.nextRefreshAt + cfg.tRfcPerBank);
            channel.refreshBank =
                (channel.refreshBank + 1) % cfg.banksPerChannel;
            channel.nextRefreshAt += cfg.tRefi / cfg.banksPerChannel;
            ++statRefreshes;
        }
    }
    now += cycles;
}

std::string
Hbm::debugState() const
{
    std::size_t queued = 0;
    for (const Channel &ch : channels)
        queued += ch.queue.size();
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "inflightTx=%llu queuedTx=%zu completions=%zu",
                  static_cast<unsigned long long>(inflightTx), queued,
                  completions.size());
    return buf;
}

double
Hbm::bandwidthUtilization() const
{
    if (now == 0)
        return 0.0;
    const double peak = cfg.peakBytesPerCycle() * static_cast<double>(now);
    return totalBytes() / peak;
}

double
Hbm::rowHitRate() const
{
    const double issued = statRowHits.value() + statRowMisses.value();
    return issued == 0.0 ? 0.0 : statRowHits.value() / issued;
}

void
Hbm::saveState(sim::Serializer &s) const
{
    using Pq = PqOpener<Completion, std::vector<Completion>,
                        std::greater<Completion>>;
    sim::Component::saveState(s);
    s.writeMarker(kHbmMarker);
    s.writeU64(channels.size());
    for (const Channel &channel : channels) {
        s.writePodDeque(channel.queue);
        s.writePodVec(channel.banks);
        s.writeU64(channel.busFreeAt);
        s.writeU64(channel.nextActivateAt);
        s.writeU64(channel.nextRefreshAt);
        s.writeU32(channel.refreshBank);
    }
    // The request slab travels field-by-field: the port is a live object
    // reference (registry index), so Request is not memcpy-safe. Free
    // slots keep their stale-but-registered port pointer, preserving the
    // slab byte-for-byte.
    s.writeU64(requests.size());
    for (const Request &req : requests) {
        s.writeU64(req.tag);
        s.writePointer(req.port);
        s.writeU32(req.pendingTx);
        s.writeBool(req.isWrite);
        s.writeU64(req.issuedAt);
        s.writeBool(req.faultChecked);
        s.writeU32(req.queuedTx);
        s.writeU64(req.finishAt);
    }
    s.writePodVec(freeList);
    s.writePodVec(Pq::container(completions));
    s.writePodVec(Pq::container(requestFinishes));
    s.writeU64(inflightTx);
    s.writeU64(queuedTxTotal);
    s.writeU64(now);
}

void
Hbm::restoreState(sim::Deserializer &d)
{
    using Pq = PqOpener<Completion, std::vector<Completion>,
                        std::greater<Completion>>;
    sim::Component::restoreState(d);
    d.expectMarker(kHbmMarker);
    const std::uint64_t nch = d.readU64();
    gds_require(nch == channels.size(), CheckpointError,
                "checkpoint has %llu HBM channels, this config has %zu",
                static_cast<unsigned long long>(nch), channels.size());
    for (Channel &channel : channels) {
        d.readPodDeque(channel.queue);
        d.readPodVec(channel.banks);
        channel.busFreeAt = d.readU64();
        channel.nextActivateAt = d.readU64();
        channel.nextRefreshAt = d.readU64();
        channel.refreshBank = d.readU32();
    }
    const std::uint64_t nreq = d.readU64();
    requests.clear();
    requests.reserve(static_cast<std::size_t>(nreq));
    for (std::uint64_t i = 0; i < nreq; ++i) {
        Request req{};
        req.tag = d.readU64();
        req.port = d.readPointer<HbmPort>();
        req.pendingTx = d.readU32();
        req.isWrite = d.readBool();
        req.issuedAt = d.readU64();
        req.faultChecked = d.readBool();
        req.queuedTx = d.readU32();
        req.finishAt = d.readU64();
        requests.push_back(req);
    }
    d.readPodVec(freeList);
    d.readPodVec(Pq::container(completions));
    d.readPodVec(Pq::container(requestFinishes));
    inflightTx = d.readU64();
    queuedTxTotal = d.readU64();
    now = d.readU64();
}

} // namespace gds::mem
