/**
 * @file
 * Radix-N crossbar switch model (the 128-radix switch between the
 * Processor's SIMT lanes and the Updating Elements, Sec. 4.2.1).
 *
 * Each output port accepts at most one flit per cycle; a second flit routed
 * to the same output in the same cycle is refused and the sending lane
 * stalls (this contention is what degrades high-throughput algorithms when
 * the UE count shrinks, Fig. 14e). The owner calls beginCycle() once per
 * cycle to reset the per-output grant state.
 */

#pragma once

#include <vector>

#include "common/debug.hh"
#include "obs/trace.hh"
#include "sim/checkpoint.hh"
#include "sim/component.hh"
#include "sim/fault.hh"

namespace gds::mem
{

/** Switch fabric bookkeeping; payload delivery is the owner's business. */
class Crossbar : public sim::Component
{
  public:
    Crossbar(unsigned radix, sim::Component *parent)
        : sim::Component("crossbar", parent),
          granted(radix, false),
          statFlits(&statsGroup(), "flits", "flits routed"),
          statConflicts(&statsGroup(), "conflicts",
                        "output-port conflicts (flit refused)"),
          statFaultStalls(&statsGroup(), "faultStalls",
                          "grants refused by fault injection")
    {
        gds_assert(radix > 0, "crossbar radix must be positive");
    }

    /** Attach (or detach, with nullptr) a fault injector that can refuse
     *  output-port grants, modelling a glitching switch. */
    void setFaultInjector(sim::FaultInjector *injector) { fault = injector; }

    unsigned radix() const { return static_cast<unsigned>(granted.size()); }

    /** Reset per-cycle grant state. Call once at the start of each cycle. */
    void
    beginCycle()
    {
        std::fill(granted.begin(), granted.end(), false);
    }

    /**
     * Try to route one flit to @p output this cycle.
     * @return true if the output port was free (the flit is granted).
     */
    bool
    tryRoute(unsigned output)
    {
        gds_assert(output < granted.size(), "output port %u out of range",
                   output);
        if (granted[output]) {
            ++statConflicts;
            return false;
        }
        if (fault && fault->stallOutput()) {
            ++statFaultStalls;
            if (obs::Tracer *t = obs::activeTracer()) {
                t->instant(t->track(tracePath()), "fault:stall",
                           debug::traceCycle());
            }
            return false;
        }
        granted[output] = true;
        ++statFlits;
        return true;
    }

    /** Flits routed so far (energy model input). */
    double flitsRouted() const { return statFlits.value(); }

    /** Output-port conflicts so far (sampler probe). */
    double conflicts() const { return statConflicts.value(); }

    /** Activity = flits routed (counter-track unit). */
    std::uint64_t
    activityCounter() const override
    {
        return static_cast<std::uint64_t>(statFlits.value());
    }

    /** The crossbar holds no state across cycles: grants are per-cycle
     *  and payload delivery is the owner's business. */
    bool busy() const override { return false; }

    /** Stateless across cycles: never self-schedules an event. Routing
     *  demand is the owner's, and reflected in the owner's horizon. */
    Cycle nextEventCycle() const override { return kNeverEvent; }

    bool supportsFastForward() const override { return true; }

    /** Checkpoint: base progress/stats plus the grant mask. Checkpoints
     *  land between cycles, where the mask is the (already consumed)
     *  previous cycle's grants — serialized anyway so the state is
     *  byte-for-byte identical to the uninterrupted run's. */
    void
    saveState(sim::Serializer &s) const override
    {
        sim::Component::saveState(s);
        s.writeBoolVec(granted);
    }

    void
    restoreState(sim::Deserializer &d) override
    {
        sim::Component::restoreState(d);
        d.readBoolVec(granted);
    }

    std::string
    debugState() const override
    {
        unsigned granted_now = 0;
        for (const bool g : granted)
            granted_now += g ? 1 : 0;
        return "granted " + std::to_string(granted_now) + "/" +
               std::to_string(granted.size()) + " outputs this cycle, " +
               std::to_string(static_cast<std::uint64_t>(
                   statConflicts.value())) +
               " conflicts total";
    }

  private:
    std::vector<bool> granted;
    // gds-ckpt: skip(fault) non-owning injector hook, re-attached by the
    // harness after restore (fault campaigns are not checkpointable)
    sim::FaultInjector *fault = nullptr;
    stats::Scalar statFlits;
    stats::Scalar statConflicts;
    stats::Scalar statFaultStalls;
};

} // namespace gds::mem
