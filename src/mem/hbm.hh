/**
 * @file
 * Cycle-level HBM 1.0 model (the role Ramulator plays in the paper's
 * methodology).
 *
 * Geometry: N independent channels (32 by default; 32 x 16 B/cycle at the
 * 1 GHz accelerator clock = 512 GB/s peak, Table 3), each with its own
 * command issue slot, data bus, and banks. Requests are split into 32 B
 * transactions, queued per channel, and scheduled FR-FCFS (row hits first
 * within a lookahead window). Row misses pay precharge + activate + CAS;
 * hits pay CAS only; periodic refresh blocks a channel for tRFC every
 * tREFI. These are exactly the behaviours the paper's results lean on:
 * streaming accesses ride open rows at near-peak bandwidth while random
 * accesses suffer row misses and queueing.
 *
 * Requesters own a Port; responses (request tags) appear in the port's
 * response queue once every transaction of the request has completed.
 */

#pragma once

#include <deque>
#include <queue>
#include <vector>

#include "sim/component.hh"
#include "sim/fault.hh"

namespace gds::mem
{

/** HBM 1.0 timing/geometry, in accelerator cycles (1 cycle = 1 ns). */
struct HbmConfig
{
    unsigned numChannels = 32;
    unsigned banksPerChannel = 16;
    unsigned rowBytes = 1024;
    unsigned txBytes = 32;  ///< transaction (burst) granularity
    Cycle tBurst = 2;       ///< data-bus occupancy per transaction
    Cycle tCl = 14;         ///< CAS latency
    Cycle tRcd = 14;        ///< activate-to-column
    Cycle tRp = 14;         ///< precharge
    Cycle tCcd = 2;         ///< column-to-column, same bank
    Cycle tRrd = 4;         ///< activate-to-activate, same channel
    Cycle tRefi = 3900;     ///< all-bank refresh interval per channel
    Cycle tRfcPerBank = 60; ///< per-bank refresh duration (staggered)
    unsigned queueDepth = 64;   ///< per-channel transaction queue
    unsigned frfcfsWindow = 8;  ///< FR-FCFS lookahead

    /** Peak bandwidth in bytes per cycle. */
    double
    peakBytesPerCycle() const
    {
        return static_cast<double>(numChannels) * txBytes / tBurst;
    }
};

/** Asynchronous memory interface handed to each requester. */
class HbmPort
{
  public:
    /** True when a completed request tag is waiting. */
    bool hasResponse() const { return !responses.empty(); }

    /** Pop the oldest completed request tag. */
    std::uint64_t
    popResponse()
    {
        gds_assert(!responses.empty(), "no response pending");
        const std::uint64_t tag = responses.front();
        responses.pop_front();
        return tag;
    }

    /** Requests issued but not yet fully completed. */
    std::uint64_t inflight() const { return _inflight; }

    /**
     * Checkpoint hook: pending response tags plus the in-flight count.
     * The owning requester saves its ports alongside its own state (the
     * Hbm serializes port *references* through the pointer registry, not
     * port contents).
     */
    template <typename SER>
    void
    saveState(SER &s) const
    {
        s.writePodDeque(responses);
        s.writeU64(_inflight);
    }

    template <typename DES>
    void
    restoreState(DES &d)
    {
        d.readPodDeque(responses);
        _inflight = d.readU64();
    }

  private:
    friend class Hbm;
    std::deque<std::uint64_t> responses;
    std::uint64_t _inflight = 0;
};

/** The memory device. Tick once per accelerator cycle. */
class Hbm : public sim::Component
{
  public:
    Hbm(const HbmConfig &config, sim::Component *parent);

    /**
     * Try to enqueue a request. Returns false (and changes nothing) when
     * any target channel queue lacks space; the caller retries next cycle.
     *
     * @param addr byte address
     * @param bytes request length (split into 32 B transactions)
     * @param is_write write request (timed like a read, counted separately)
     * @param tag requester-chosen id returned on completion
     * @param port response destination
     */
    bool access(Addr addr, unsigned bytes, bool is_write, std::uint64_t tag,
                HbmPort *port);

    void tick() override;
    bool busy() const override { return inflightTx > 0; }

    /**
     * Earliest tick with an externally visible event: the min over the
     * earliest *request*-finishing completion (the cycle a port response
     * appears) and, per queued transaction in each channel's FR-FCFS
     * window, its bank-ready / activate gate. Intermediate transaction
     * completions of a multi-burst request are internal bookkeeping and
     * do not bound the horizon (skipCycles() retires them in bulk);
     * refreshes likewise only delay issue and are replayed exactly.
     */
    Cycle nextEventCycle() const override;

    /**
     * Replay @p cycles pure-wait ticks: retire every intermediate
     * transaction completion maturing in the window at its exact cycle
     * (piecewise-integrating occupancy around each), fire every scheduled
     * refresh, advance the local clock. Asserts no request finishes
     * inside the window; issue gates never fall inside it because they
     * bound the horizon the window was derived from.
     */
    void skipCycles(Cycle cycles) override;

    bool supportsFastForward() const override { return true; }

    std::string debugState() const override;

    /**
     * Checkpoint every live timing structure: per-channel queues, bank
     * rows, bus/activate/refresh clocks, the request slab (ports travel
     * as pointer-registry references — register every HbmPort on the
     * Serializer/Deserializer before calling), the free list, and both
     * completion heaps copied verbatim so equal-time pops replay in the
     * exact pre-checkpoint order. Geometry and timing come from the
     * constructor's config and are not serialized.
     */
    void saveState(sim::Serializer &s) const override;
    void restoreState(sim::Deserializer &d) override;

    /** Activity = transactions issued (counter-track unit: 32 B bursts). */
    std::uint64_t
    activityCounter() const override
    {
        return static_cast<std::uint64_t>(statTransactions.value());
    }

    /**
     * Attach (or detach, with nullptr) a fault injector. When attached,
     * responses may be delayed or dropped and requests refused admission
     * according to the injector's plan.
     */
    void setFaultInjector(sim::FaultInjector *injector) { fault = injector; }

    const HbmConfig &config() const { return cfg; }

    /** Total bytes moved (reads + writes, transaction-granular). */
    double totalBytes() const
    {
        return statReadBytes.value() + statWriteBytes.value();
    }

    /** Cumulative bytes read (sampler probe; transaction-granular). */
    double readBytes() const { return statReadBytes.value(); }

    /** Cumulative bytes written (sampler probe; transaction-granular). */
    double writeBytes() const { return statWriteBytes.value(); }

    /** Achieved / peak bandwidth over the elapsed simulated time. */
    double bandwidthUtilization() const;

    /** Row-hit fraction of all issued transactions. */
    double rowHitRate() const;

    /** Cycles this model has been ticked. */
    Cycle elapsed() const { return now; }

    /** Mean number of in-flight transactions per cycle. */
    double
    meanOccupancy() const
    {
        return now == 0 ? 0.0 : statOccupancySum.value() / now;
    }

    /** Mean request latency (accept to last-transaction completion). */
    double
    meanLatency() const
    {
        return statRequests.value() == 0.0
                   ? 0.0
                   : statLatencySum.value() / statRequests.value();
    }

  private:
    struct Request
    {
        std::uint64_t tag;
        HbmPort *port;
        unsigned pendingTx;
        bool isWrite;
        Cycle issuedAt;
        bool faultChecked = false; ///< injector consulted for this request
        unsigned queuedTx = 0;     ///< transactions not yet issued
        Cycle finishAt = 0;        ///< max completion time issued so far
    };

    struct Transaction
    {
        std::uint32_t requestIndex;
        std::uint32_t bank;
        std::uint64_t row;
    };

    struct Bank
    {
        std::uint64_t openRow = noRow;
        Cycle nextReady = 0;
    };

    struct Channel
    {
        std::deque<Transaction> queue;
        std::vector<Bank> banks;
        Cycle busFreeAt = 0;
        Cycle nextActivateAt = 0; ///< tRRD gate
        Cycle nextRefreshAt;
        unsigned refreshBank = 0; ///< round-robin per-bank refresh index
    };

    struct Completion
    {
        Cycle at;
        std::uint32_t requestIndex;
        bool operator>(const Completion &o) const { return at > o.at; }
    };

    static constexpr std::uint64_t noRow = ~0ULL;

    /** Map a transaction-aligned address to (channel, bank, row). */
    void mapAddress(Addr tx_addr, unsigned &channel, std::uint32_t &bank,
                    std::uint64_t &row) const;

    /** Channel of a transaction-aligned address (hot-path helper). */
    unsigned
    txChannel(Addr tx_addr) const
    {
        return static_cast<unsigned>(
            pow2Geometry ? tx_addr & (cfg.numChannels - 1)
                         : tx_addr % cfg.numChannels);
    }

    void serviceChannel(unsigned ch);
    void finishCompletions();

    // gds-ckpt: skip(cfg) construction-time geometry/timing config; the
    // restore path verifies the config hash instead of serializing it
    HbmConfig cfg;
    /**
     * Address mapping runs once per 32 B transaction, so with the default
     * all-power-of-two geometry the channel/bank/row splits use shifts and
     * masks instead of 64-bit divisions by runtime values.
     */
    // gds-ckpt: skip(pow2Geometry) derived from cfg in the constructor
    bool pow2Geometry = false;
    // gds-ckpt: skip(channelShift) derived from cfg in the constructor
    unsigned channelShift = 0;
    // gds-ckpt: skip(rowShift) derived from cfg in the constructor
    unsigned rowShift = 0;  ///< log2(rowBytes / txBytes)
    // gds-ckpt: skip(bankShift) derived from cfg in the constructor
    unsigned bankShift = 0; ///< log2(banksPerChannel)
    std::vector<Channel> channels;
    std::vector<Request> requests;       ///< slab of live requests
    std::vector<std::uint32_t> freeList; ///< recycled request slots
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions;
    /**
     * Externally visible completion events: one entry per fully-issued
     * request, stamped with its last transaction's completion time (the
     * cycle its port response appears). Intermediate transaction
     * completions are internal bookkeeping the fast-forward path replays
     * in bulk, so only these bound the idle horizon. Entries are pruned
     * by time once they mature (a delayed-fault redelivery pushes a fresh
     * entry at the deferred time).
     */
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        requestFinishes;
    // gds-ckpt: skip(demandScratch) per-call scratch, overwritten before
    // every use in serviceChannel()
    std::vector<unsigned> demandScratch; ///< per-channel admission counts
    std::uint64_t inflightTx = 0;
    std::uint64_t queuedTxTotal = 0; ///< not-yet-issued tx across channels
    Cycle now = 0;
    // gds-ckpt: skip(fault) non-owning injector hook, re-attached by the
    // harness after restore (fault campaigns are not checkpointable)
    sim::FaultInjector *fault = nullptr;

    stats::Scalar statReadBytes;
    stats::Scalar statWriteBytes;
    stats::Scalar statRowHits;
    stats::Scalar statRowMisses;
    stats::Scalar statRefreshes;
    stats::Scalar statDataBusBusy;
    stats::Scalar statTransactions;
    stats::Scalar statOccupancySum; ///< sum over cycles of in-flight tx
    stats::Scalar statLatencySum;   ///< total request latency (cycles)
    stats::Scalar statRequests;     ///< completed requests
    stats::Scalar statFaultDropped; ///< responses dropped by fault injection
    stats::Scalar statFaultDelayed; ///< responses delayed by fault injection
    stats::Scalar statFaultRejected;///< requests refused by fault injection
};

} // namespace gds::mem
