/**
 * @file
 * Route-planning scenario: SSSP (shortest travel time) and SSWP (widest
 * bottleneck capacity) on a road-network-like 2D grid with weighted
 * links, run on the GraphDynS model. Grids are the opposite workload
 * extreme from social networks -- bounded degree, huge diameter, long
 * frontier tails -- and exercise the accelerator's latency-bound path.
 */

#include <cstdio>

#include "algo/reference_engine.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"

using namespace gds;

int
main()
{
    // A 256 x 256 "city" with random per-road travel times/capacities.
    constexpr VertexId width = 256;
    constexpr VertexId height = 256;
    const graph::Csr g = graph::grid2d(width, height, /*seed=*/7,
                                       /*weighted=*/true);
    std::printf("road network: %u intersections, %llu road segments\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    const VertexId depot = 0; // north-west corner
    auto intersection = [&](VertexId x, VertexId y) {
        return y * width + x;
    };

    // --- SSSP: fastest routes from the depot. ---
    auto sssp = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    core::GdsConfig cfg;
    core::GdsAccel accel(cfg, g, *sssp);
    core::RunOptions options;
    options.source = depot;
    const auto dist = accel.run(options);
    std::printf("\nSSSP from the depot: %u iterations, %.3f ms simulated, "
                "%.1f GTEPS\n",
                dist.iterations, static_cast<double>(dist.cycles) * 1e-6,
                dist.gteps());
    const VertexId destinations[] = {
        intersection(width - 1, 0), intersection(0, height - 1),
        intersection(width - 1, height - 1),
        intersection(width / 2, height / 2)};
    std::printf("travel costs: ");
    for (const VertexId d : destinations)
        std::printf("(%u,%u)=%.0f ", d % width, d / width,
                    dist.properties[d]);
    std::printf("\n");

    // --- SSWP: maximum convoy weight to each intersection. ---
    auto sswp = algo::makeAlgorithm(algo::AlgorithmId::Sswp);
    core::GdsAccel accel_w(cfg, g, *sswp);
    const auto width_run = accel_w.run(options);
    std::printf("\nSSWP from the depot: %u iterations, %.3f ms "
                "simulated\n",
                width_run.iterations,
                static_cast<double>(width_run.cycles) * 1e-6);
    std::printf("bottleneck capacities: ");
    for (const VertexId d : destinations)
        std::printf("(%u,%u)=%.0f ", d % width, d / width,
                    width_run.properties[d]);
    std::printf("\n");

    // --- Verify both against the reference engine. ---
    auto sssp_ref = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    auto sswp_ref = algo::makeAlgorithm(algo::AlgorithmId::Sswp);
    const auto dist_ref = algo::runReference(g, *sssp_ref, depot);
    const auto width_ref = algo::runReference(g, *sswp_ref, depot);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (dist.properties[v] != dist_ref.properties[v] ||
            width_run.properties[v] != width_ref.properties[v]) {
            std::printf("MISMATCH at vertex %u\n", v);
            return 1;
        }
    }
    std::printf("\nverification: both runs match the functional "
                "reference\n");

    // Grids make update scheduling shine: frontiers are thin rings, so
    // most Ready-to-Update groups are skipped every iteration.
    std::printf("apply operations skipped by the RB bitmap: %llu "
                "(of %u x %u iterations x vertices)\n",
                static_cast<unsigned long long>(dist.updatesSkipped),
                g.numVertices(), dist.iterations);
    return 0;
}
