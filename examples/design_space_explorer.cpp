/**
 * @file
 * Design-space exploration with the public API: sweep the GraphDynS
 * ablation knobs (the four data-aware scheduling techniques) and the
 * Updater count on one workload, reporting simulated time, traffic and
 * the power/area each configuration would cost. This is the kind of
 * study Sec. 7.1/7.2 of the paper performs.
 */

#include <cstdio>

#include "energy/energy_model.hh"
#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    std::printf("=== GraphDynS design-space exploration (PR on the "
                "Flickr surrogate) ===\n\n");
    const graph::Csr g = harness::loadDataset("FR", /*weighted=*/false);

    // --- Technique ablation. ---
    std::printf("scheduling-technique ablation (cumulative):\n");
    Table ablation({"config", "time(ms)", "GTEPS", "traffic(MB)",
                    "atomic stalls", "applies skipped"});
    const harness::GdsVariant variants[] = {
        harness::GdsVariant::Wb, harness::GdsVariant::We,
        harness::GdsVariant::Wea, harness::GdsVariant::Full};
    for (const auto v : variants) {
        const auto r =
            harness::runGds(algo::AlgorithmId::Pr, "FR", g, v);
        ablation.addRow({harness::variantName(v),
                         Table::num(r.seconds * 1e3, 3),
                         Table::num(r.gteps, 1),
                         Table::num(r.memoryBytes / 1e6, 1),
                         Table::num(r.atomicStalls, 0),
                         Table::num(r.updatesSkipped, 0)});
    }
    ablation.print();

    // --- Updater (crossbar radix) sweep with hardware cost. ---
    std::printf("\nUpdater-count sweep (performance vs silicon):\n");
    Table sweep({"UEs", "time(ms)", "GTEPS", "power(W)", "area(mm2)"});
    energy::EnergyModel model;
    for (const unsigned ues : {32u, 64u, 128u, 256u}) {
        core::GdsConfig cfg;
        cfg.numUes = ues;
        const auto r = harness::runGds(algo::AlgorithmId::Pr, "FR", g,
                                       harness::GdsVariant::Full, &cfg);
        const auto hw = model.gdsBreakdown(cfg);
        sweep.addRow({std::to_string(ues),
                      Table::num(r.seconds * 1e3, 3),
                      Table::num(r.gteps, 1),
                      Table::num(hw.totalPowerW(), 2),
                      Table::num(hw.totalAreaMm2(), 2)});
    }
    sweep.print();

    std::printf("\nreading: each scheduling technique buys time and/or "
                "traffic; UEs above 128 cost quadratic crossbar area for "
                "diminishing returns.\n");
    return 0;
}
