/**
 * @file
 * gds_sim: a command-line driver exposing the whole evaluation platform,
 * the entry point a downstream user of this library reaches for first.
 *
 *   gds_sim --algo pr --dataset LJ --system gds
 *   gds_sim --algo sssp --graph edges.txt --system graphicionado
 *   gds_sim --algo bfs --rmat 18 --system all --stats
 *
 * Options:
 *   --algo bfs|sssp|cc|sswp|pr     algorithm (required)
 *   --system gds|graphicionado|gunrock|all   (default gds)
 *   --dataset NAME                 a Table 4 dataset (FR PK LJ HO IN OR,
 *                                  RM22..RM26), scaled by GDS_SCALE
 *   --graph FILE                   whitespace edge-list file
 *   --rmat SCALE                   RMAT graph with 2^SCALE vertices
 *   --source VID                   source vertex (default: max degree)
 *   --iters N                      iteration cap (default: 10 for PR)
 *   --ues N / --pes N              GraphDynS structural knobs
 *   --no-wb --no-ep --no-ao --no-us   disable a scheduling technique
 *   --stats                        dump the full statistics tree
 *   --trace FILE                   write a Perfetto-loadable event trace
 *   --sample-interval N            sample stats every N cycles
 *   --samples FILE                 sample CSV path (default
 *                                  gds_samples.csv; per-system prefix
 *                                  with --system all)
 *   --checkpoint-dir DIR           write mid-run checkpoints into DIR
 *   --checkpoint-interval N        checkpoint every N cycles (default:
 *                                  only on SIGINT/SIGTERM)
 *   --resume                       resume from DIR's latest checkpoint
 *   --kill-at-cycle N              raise SIGKILL at cycle N (crash tests)
 *
 * SIGINT/SIGTERM request a graceful stop: the run halts at the next
 * watchdog boundary, writes a final checkpoint (when --checkpoint-dir is
 * set) and still flushes samples and the trace, so an interrupted run can
 * be resumed with --resume and loses nothing.
 *
 * Every value flag also accepts the --flag=value spelling.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <optional>
#include <string>

#include "baseline/graphicionado.hh"
#include "common/parse.hh"
#include "baseline/gunrock_sim.hh"
#include "core/gds_accel.hh"
#include "energy/energy_model.hh"
#include "graph/generators.hh"
#include "graph/loader.hh"
#include "harness/experiment.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

using namespace gds;

namespace
{

struct Options
{
    std::optional<algo::AlgorithmId> algorithm;
    std::string system = "gds";
    std::string dataset;
    std::string graphFile;
    std::optional<unsigned> rmatScale;
    std::optional<VertexId> source;
    std::optional<unsigned> iterations;
    core::GdsConfig gdsConfig;
    bool dumpStats = false;
    std::string traceFile;
    Cycle sampleInterval = 0;
    std::string sampleFile = "gds_samples.csv";
    std::string checkpointDir;
    Cycle checkpointInterval = 0;
    bool resume = false;
    Cycle killAtCycle = 0;
};

/** Async-signal-safe: requestStop() is one relaxed atomic store. */
void
handleStopSignal(int)
{
    sim::requestStop();
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --algo bfs|sssp|cc|sswp|pr "
                 "[--system gds|graphicionado|gunrock|all]\n"
                 "       (--dataset NAME | --graph FILE | --rmat SCALE)\n"
                 "       [--source VID] [--iters N] [--ues N] [--pes N]\n"
                 "       [--no-wb] [--no-ep] [--no-ao] [--no-us] "
                 "[--stats]\n"
                 "       [--trace FILE] [--sample-interval N] "
                 "[--samples FILE]\n"
                 "       [--checkpoint-dir DIR] [--checkpoint-interval N] "
                 "[--resume]\n"
                 "       [--kill-at-cycle N]\n",
                 argv0);
    std::exit(1);
}

algo::AlgorithmId
parseAlgo(const std::string &name)
{
    if (name == "bfs")
        return algo::AlgorithmId::Bfs;
    if (name == "sssp")
        return algo::AlgorithmId::Sssp;
    if (name == "cc")
        return algo::AlgorithmId::Cc;
    if (name == "sswp")
        return algo::AlgorithmId::Sswp;
    if (name == "pr")
        return algo::AlgorithmId::Pr;
    fatal("unknown algorithm '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Both "--flag value" and "--flag=value" are accepted.
        std::optional<std::string> inline_value;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
            }
        }
        auto need_value = [&]() -> std::string {
            if (inline_value)
                return *inline_value;
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto no_value = [&]() {
            if (inline_value)
                usage(argv[0]);
        };
        // Numeric flags go through the checked parser: "--num-pes=abc",
        // "--source=-1" or an overflowing value is a ConfigError that
        // main() turns into a message + usage, never an uncaught
        // std::invalid_argument crash (which bare std::stoul threw).
        auto need_u64 = [&](std::uint64_t min_v, std::uint64_t max_v) {
            return common::requireU64(arg, need_value(), min_v, max_v);
        };
        if (arg == "--algo")
            opts.algorithm = parseAlgo(need_value());
        else if (arg == "--system")
            opts.system = need_value();
        else if (arg == "--dataset")
            opts.dataset = need_value();
        else if (arg == "--graph")
            opts.graphFile = need_value();
        else if (arg == "--rmat")
            opts.rmatScale = static_cast<unsigned>(need_u64(1, 30));
        else if (arg == "--source")
            opts.source = static_cast<VertexId>(
                need_u64(0, std::numeric_limits<VertexId>::max()));
        else if (arg == "--iters")
            opts.iterations = static_cast<unsigned>(
                need_u64(1, std::numeric_limits<unsigned>::max()));
        else if (arg == "--ues")
            opts.gdsConfig.numUes =
                static_cast<unsigned>(need_u64(1, 1 << 20));
        else if (arg == "--pes") {
            opts.gdsConfig.numPes =
                static_cast<unsigned>(need_u64(1, 1 << 20));
            opts.gdsConfig.numDispatchers = opts.gdsConfig.numPes;
        } else if (arg == "--no-wb") {
            no_value();
            opts.gdsConfig.workloadBalance = false;
        } else if (arg == "--no-ep") {
            no_value();
            opts.gdsConfig.exactPrefetch = false;
        } else if (arg == "--no-ao") {
            no_value();
            opts.gdsConfig.zeroStallAtomics = false;
        } else if (arg == "--no-us") {
            no_value();
            opts.gdsConfig.updateScheduling = false;
        } else if (arg == "--stats") {
            no_value();
            opts.dumpStats = true;
        } else if (arg == "--trace")
            opts.traceFile = need_value();
        else if (arg == "--sample-interval")
            opts.sampleInterval = need_u64(
                1, std::numeric_limits<Cycle>::max());
        else if (arg == "--samples")
            opts.sampleFile = need_value();
        else if (arg == "--checkpoint-dir")
            opts.checkpointDir = need_value();
        else if (arg == "--checkpoint-interval")
            opts.checkpointInterval = need_u64(
                1, std::numeric_limits<Cycle>::max());
        else if (arg == "--resume") {
            no_value();
            opts.resume = true;
        } else if (arg == "--kill-at-cycle")
            opts.killAtCycle = need_u64(
                1, std::numeric_limits<Cycle>::max());
        else
            usage(argv[0]);
    }
    if (!opts.algorithm)
        usage(argv[0]);
    const int graph_sources = (!opts.dataset.empty() ? 1 : 0) +
                              (!opts.graphFile.empty() ? 1 : 0) +
                              (opts.rmatScale ? 1 : 0);
    if (graph_sources != 1)
        usage(argv[0]);
    if (opts.checkpointDir.empty() &&
        (opts.resume || opts.checkpointInterval != 0))
        fatal("--resume and --checkpoint-interval need --checkpoint-dir");
    return opts;
}

void
printCommon(const char *system, double seconds, double gteps,
            double bytes, double util, double energy_j)
{
    std::printf("%-14s time=%.4f ms  throughput=%.1f GTEPS  "
                "traffic=%.1f MB  bw=%.0f%%  energy=%.2f mJ\n",
                system, seconds * 1e3, gteps, bytes / 1e6, util * 100.0,
                energy_j * 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    try {
        opts = parseArgs(argc, argv);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
    }

    // Graceful stop: the handler only sets an atomic flag; the run loop
    // notices it at the next watchdog boundary, checkpoints and returns,
    // and main still flushes samples and the trace below.
    sim::clearStopRequest();
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    const auto algorithm_id = *opts.algorithm;
    const bool weighted =
        algo::makeAlgorithm(algorithm_id)->usesWeights();

    // --- Obtain the graph. ---
    graph::Csr g;
    if (!opts.dataset.empty()) {
        g = harness::loadDataset(opts.dataset, weighted);
    } else if (!opts.graphFile.empty()) {
        g = graph::loadEdgeList(opts.graphFile);
        if (weighted && !g.hasWeights())
            g = g.withRandomWeights(1);
    } else {
        g = graph::rmat(*opts.rmatScale, 16, 42, {}, weighted);
    }
    std::printf("graph: %u vertices, %llu edges\n", g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    const VertexId source = opts.source
                                ? *opts.source
                                : harness::sourceFor(algorithm_id, g);
    const unsigned iters = opts.iterations
                               ? *opts.iterations
                               : harness::iterationCap(algorithm_id);
    std::printf("%s from vertex %u, iteration cap %u\n\n",
                algo::algorithmName(algorithm_id).c_str(), source, iters);

    const bool all = opts.system == "all";
    energy::EnergyModel energy_model;

    // Telemetry: one tracer serves every simulated system (tracks are
    // per-component, so systems land on distinct tracks); samplers are
    // per run because their probes reference the accelerator instance.
    const bool tracing = !opts.traceFile.empty();
    obs::Tracer tracer;
    std::optional<obs::ScopedActiveTracer> trace_scope;
    if (tracing)
        trace_scope.emplace(&tracer);
    // Counter tracks ride the sample interval; default to 10k cycles
    // when tracing without sampling.
    const Cycle counter_interval =
        tracing ? (opts.sampleInterval != 0 ? opts.sampleInterval : 10'000)
                : 0;
    Cycle last_traced_cycle = 0;
    auto sample_path = [&](const char *system_tag) {
        return all ? std::string(system_tag) + "." + opts.sampleFile
                   : opts.sampleFile;
    };
    auto dump_samples = [&](const obs::Sampler &sampler,
                            const char *system_tag) {
        const std::string path = sample_path(system_tag);
        if (sampler.writeCsvFile(path)) {
            std::printf("  samples: %s (%zu rows, every %llu cycles)\n",
                        path.c_str(), sampler.sampleCount(),
                        static_cast<unsigned long long>(
                            opts.sampleInterval));
        }
    };
    // Per-system checkpoint basename so --system all runs don't collide.
    auto checkpoint_for = [&](const char *system_tag) {
        core::CheckpointOptions ckpt;
        if (opts.checkpointDir.empty())
            return ckpt;
        ckpt.dir = opts.checkpointDir;
        ckpt.basename = system_tag;
        ckpt.interval = opts.checkpointInterval;
        ckpt.resume = opts.resume;
        return ckpt;
    };
    auto note_interrupted = [&](const core::RunResult &r) {
        if (r.report.outcome != sim::RunOutcome::Stopped)
            return;
        std::printf("  stopped by signal at cycle %llu%s\n",
                    static_cast<unsigned long long>(r.cycles),
                    opts.checkpointDir.empty()
                        ? ""
                        : "; checkpoint written (rerun with --resume)");
    };

    if (all || opts.system == "gds") {
        core::GdsConfig cfg = opts.gdsConfig;
        cfg.maxIterations = iters;
        auto a = algo::makeAlgorithm(algorithm_id);
        core::GdsAccel accel(cfg, g, *a);
        core::RunOptions run;
        run.source = source;
        obs::Sampler sampler;
        if (opts.sampleInterval != 0) {
            sampler.setInterval(opts.sampleInterval);
            run.sampler = &sampler;
        }
        run.traceCounterInterval = counter_interval;
        run.checkpoint = checkpoint_for("gds");
        run.killAtCycle = opts.killAtCycle;
        const auto r = accel.run(run);
        last_traced_cycle = std::max(last_traced_cycle, r.cycles);
        const auto e =
            energy_model.gdsEnergy(cfg, r.cycles, r.memoryBytes);
        printCommon("GraphDynS", static_cast<double>(r.cycles) * 1e-9,
                    r.gteps(), static_cast<double>(r.memoryBytes),
                    r.bandwidthUtilization, e.totalJ());
        std::printf("  iterations=%u slices=%u applies-skipped=%llu "
                    "atomic-stalls=%llu\n",
                    r.iterations, accel.numSlices(),
                    static_cast<unsigned long long>(r.updatesSkipped),
                    static_cast<unsigned long long>(r.atomicStalls));
        note_interrupted(r);
        if (opts.sampleInterval != 0)
            dump_samples(sampler, "gds");
        if (opts.dumpStats)
            accel.statsGroup().dump(std::cout);
    }
    if (all || opts.system == "graphicionado") {
        baseline::GraphicionadoConfig cfg;
        cfg.maxIterations = iters;
        auto a = algo::makeAlgorithm(algorithm_id);
        baseline::GraphicionadoAccel accel(cfg, g, *a);
        core::RunOptions run;
        run.source = source;
        obs::Sampler sampler;
        if (opts.sampleInterval != 0) {
            sampler.setInterval(opts.sampleInterval);
            run.sampler = &sampler;
        }
        run.traceCounterInterval = counter_interval;
        run.checkpoint = checkpoint_for("graphicionado");
        run.killAtCycle = opts.killAtCycle;
        const auto r = accel.run(run);
        last_traced_cycle = std::max(last_traced_cycle, r.cycles);
        const auto e = energy_model.graphicionadoEnergy(cfg, r.cycles,
                                                        r.memoryBytes);
        printCommon("Graphicionado", static_cast<double>(r.cycles) * 1e-9,
                    r.gteps(), static_cast<double>(r.memoryBytes),
                    r.bandwidthUtilization, e.totalJ());
        note_interrupted(r);
        if (opts.sampleInterval != 0)
            dump_samples(sampler, "graphicionado");
        if (opts.dumpStats)
            accel.statsGroup().dump(std::cout);
    }
    if (all || opts.system == "gunrock") {
        baseline::GunrockConfig cfg;
        cfg.maxIterations = iters;
        auto a = algo::makeAlgorithm(algorithm_id);
        baseline::GunrockSim gpu(cfg, g, *a);
        const auto r = gpu.run(source);
        printCommon("Gunrock", r.seconds, r.gteps(),
                    static_cast<double>(r.memoryBytes),
                    r.bandwidthUtilization, r.energyJoules);
    }
    if (!all && opts.system != "gds" && opts.system != "graphicionado" &&
        opts.system != "gunrock")
        fatal("unknown system '%s'", opts.system.c_str());

    if (tracing) {
        // An aborted run (watchdog, cycle budget) can leave phase spans
        // open; close them so the trace stays well-nested.
        tracer.endAllOpen(last_traced_cycle);
        if (tracer.writeFile(opts.traceFile)) {
            std::printf("trace: %s (%zu events) — load in "
                        "https://ui.perfetto.dev\n",
                        opts.traceFile.c_str(), tracer.eventCount());
        }
    }
    return 0;
}
