/**
 * @file
 * gds_sim: a command-line driver exposing the whole evaluation platform,
 * the entry point a downstream user of this library reaches for first.
 *
 *   gds_sim --algo pr --dataset LJ --system gds
 *   gds_sim --algo sssp --graph edges.txt --system graphicionado
 *   gds_sim --algo bfs --rmat 18 --system all --stats
 *
 * Options:
 *   --algo bfs|sssp|cc|sswp|pr     algorithm (required)
 *   --system gds|graphicionado|gunrock|all   (default gds)
 *   --dataset NAME                 a Table 4 dataset (FR PK LJ HO IN OR,
 *                                  RM22..RM26), scaled by GDS_SCALE
 *   --graph FILE                   whitespace edge-list file
 *   --rmat SCALE                   RMAT graph with 2^SCALE vertices
 *   --source VID                   source vertex (default: max degree)
 *   --iters N                      iteration cap (default: 10 for PR)
 *   --ues N / --pes N              GraphDynS structural knobs
 *   --no-wb --no-ep --no-ao --no-us   disable a scheduling technique
 *   --stats                        dump the full statistics tree
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "baseline/graphicionado.hh"
#include "baseline/gunrock_sim.hh"
#include "core/gds_accel.hh"
#include "energy/energy_model.hh"
#include "graph/generators.hh"
#include "graph/loader.hh"
#include "harness/experiment.hh"

using namespace gds;

namespace
{

struct Options
{
    std::optional<algo::AlgorithmId> algorithm;
    std::string system = "gds";
    std::string dataset;
    std::string graphFile;
    std::optional<unsigned> rmatScale;
    std::optional<VertexId> source;
    std::optional<unsigned> iterations;
    core::GdsConfig gdsConfig;
    bool dumpStats = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --algo bfs|sssp|cc|sswp|pr "
                 "[--system gds|graphicionado|gunrock|all]\n"
                 "       (--dataset NAME | --graph FILE | --rmat SCALE)\n"
                 "       [--source VID] [--iters N] [--ues N] [--pes N]\n"
                 "       [--no-wb] [--no-ep] [--no-ao] [--no-us] "
                 "[--stats]\n",
                 argv0);
    std::exit(1);
}

algo::AlgorithmId
parseAlgo(const std::string &name)
{
    if (name == "bfs")
        return algo::AlgorithmId::Bfs;
    if (name == "sssp")
        return algo::AlgorithmId::Sssp;
    if (name == "cc")
        return algo::AlgorithmId::Cc;
    if (name == "sswp")
        return algo::AlgorithmId::Sswp;
    if (name == "pr")
        return algo::AlgorithmId::Pr;
    fatal("unknown algorithm '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto need_value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--algo")
            opts.algorithm = parseAlgo(need_value(i));
        else if (arg == "--system")
            opts.system = need_value(i);
        else if (arg == "--dataset")
            opts.dataset = need_value(i);
        else if (arg == "--graph")
            opts.graphFile = need_value(i);
        else if (arg == "--rmat")
            opts.rmatScale = std::stoul(need_value(i));
        else if (arg == "--source")
            opts.source = std::stoul(need_value(i));
        else if (arg == "--iters")
            opts.iterations = std::stoul(need_value(i));
        else if (arg == "--ues")
            opts.gdsConfig.numUes = std::stoul(need_value(i));
        else if (arg == "--pes") {
            opts.gdsConfig.numPes = std::stoul(need_value(i));
            opts.gdsConfig.numDispatchers = opts.gdsConfig.numPes;
        } else if (arg == "--no-wb")
            opts.gdsConfig.workloadBalance = false;
        else if (arg == "--no-ep")
            opts.gdsConfig.exactPrefetch = false;
        else if (arg == "--no-ao")
            opts.gdsConfig.zeroStallAtomics = false;
        else if (arg == "--no-us")
            opts.gdsConfig.updateScheduling = false;
        else if (arg == "--stats")
            opts.dumpStats = true;
        else
            usage(argv[0]);
    }
    if (!opts.algorithm)
        usage(argv[0]);
    const int graph_sources = (!opts.dataset.empty() ? 1 : 0) +
                              (!opts.graphFile.empty() ? 1 : 0) +
                              (opts.rmatScale ? 1 : 0);
    if (graph_sources != 1)
        usage(argv[0]);
    return opts;
}

void
printCommon(const char *system, double seconds, double gteps,
            double bytes, double util, double energy_j)
{
    std::printf("%-14s time=%.4f ms  throughput=%.1f GTEPS  "
                "traffic=%.1f MB  bw=%.0f%%  energy=%.2f mJ\n",
                system, seconds * 1e3, gteps, bytes / 1e6, util * 100.0,
                energy_j * 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const auto algorithm_id = *opts.algorithm;
    const bool weighted =
        algo::makeAlgorithm(algorithm_id)->usesWeights();

    // --- Obtain the graph. ---
    graph::Csr g;
    if (!opts.dataset.empty()) {
        g = harness::loadDataset(opts.dataset, weighted);
    } else if (!opts.graphFile.empty()) {
        g = graph::loadEdgeList(opts.graphFile);
        if (weighted && !g.hasWeights())
            g = g.withRandomWeights(1);
    } else {
        g = graph::rmat(*opts.rmatScale, 16, 42, {}, weighted);
    }
    std::printf("graph: %u vertices, %llu edges\n", g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    const VertexId source = opts.source
                                ? *opts.source
                                : harness::sourceFor(algorithm_id, g);
    const unsigned iters = opts.iterations
                               ? *opts.iterations
                               : harness::iterationCap(algorithm_id);
    std::printf("%s from vertex %u, iteration cap %u\n\n",
                algo::algorithmName(algorithm_id).c_str(), source, iters);

    const bool all = opts.system == "all";
    energy::EnergyModel energy_model;

    if (all || opts.system == "gds") {
        core::GdsConfig cfg = opts.gdsConfig;
        cfg.maxIterations = iters;
        auto a = algo::makeAlgorithm(algorithm_id);
        core::GdsAccel accel(cfg, g, *a);
        core::RunOptions run;
        run.source = source;
        const auto r = accel.run(run);
        const auto e =
            energy_model.gdsEnergy(cfg, r.cycles, r.memoryBytes);
        printCommon("GraphDynS", static_cast<double>(r.cycles) * 1e-9,
                    r.gteps(), static_cast<double>(r.memoryBytes),
                    r.bandwidthUtilization, e.totalJ());
        std::printf("  iterations=%u slices=%u applies-skipped=%llu "
                    "atomic-stalls=%llu\n",
                    r.iterations, accel.numSlices(),
                    static_cast<unsigned long long>(r.updatesSkipped),
                    static_cast<unsigned long long>(r.atomicStalls));
        if (opts.dumpStats)
            accel.statsGroup().dump(std::cout);
    }
    if (all || opts.system == "graphicionado") {
        baseline::GraphicionadoConfig cfg;
        cfg.maxIterations = iters;
        auto a = algo::makeAlgorithm(algorithm_id);
        baseline::GraphicionadoAccel accel(cfg, g, *a);
        core::RunOptions run;
        run.source = source;
        const auto r = accel.run(run);
        const auto e = energy_model.graphicionadoEnergy(cfg, r.cycles,
                                                        r.memoryBytes);
        printCommon("Graphicionado", static_cast<double>(r.cycles) * 1e-9,
                    r.gteps(), static_cast<double>(r.memoryBytes),
                    r.bandwidthUtilization, e.totalJ());
        if (opts.dumpStats)
            accel.statsGroup().dump(std::cout);
    }
    if (all || opts.system == "gunrock") {
        baseline::GunrockConfig cfg;
        cfg.maxIterations = iters;
        auto a = algo::makeAlgorithm(algorithm_id);
        baseline::GunrockSim gpu(cfg, g, *a);
        const auto r = gpu.run(source);
        printCommon("Gunrock", r.seconds, r.gteps(),
                    static_cast<double>(r.memoryBytes),
                    r.bandwidthUtilization, r.energyJoules);
    }
    if (!all && opts.system != "gds" && opts.system != "graphicionado" &&
        opts.system != "gunrock")
        fatal("unknown system '%s'", opts.system.c_str());
    return 0;
}
