/**
 * @file
 * gds_simd: the persistent simulation-service daemon. Accepts JSON-line
 * simulation jobs over a Unix-domain socket (see src/svc/protocol.hh),
 * schedules them onto a worker pool, shares loaded datasets across
 * concurrent jobs and serves repeat requests from the on-disk result
 * cache. Pair it with tools/gds_cli:
 *
 *   gds_simd --socket /tmp/gds.sock --workers 4 &
 *   gds_cli --socket /tmp/gds.sock submit --algo bfs --dataset FR
 *   gds_cli --socket /tmp/gds.sock statsz
 *
 * Options (all values also accept the --flag=value spelling):
 *   --socket PATH          listening socket path (default gds_simd.sock)
 *   --workers N            simulation worker threads (default 2)
 *   --max-queue N          admission bound: queued+running jobs beyond
 *                          which submits are rejected (default 8)
 *   --checkpoint-dir DIR   checkpoint in-flight jobs into DIR so a
 *                          drained job's resubmission resumes mid-run
 *   --metrics-socket PATH  serve Prometheus text exposition on PATH:
 *                          each accepted connection receives one scrape
 *                          and is closed (also available in-band as
 *                          {"op":"metricsz"})
 *   --trace FILE           write a Perfetto trace of per-job
 *                          queue/load/sim/validate/store spans to FILE
 *                          at drain
 *
 * Logging honours GDS_LOG_LEVEL (debug|info|warn|error, default info)
 * and GDS_LOG_FORMAT (human|json) — JSON-lines logs carry per-job
 * job/configHash correlation fields.
 *
 * SIGINT/SIGTERM trigger a graceful drain: admission stops, in-flight
 * jobs halt at their next check boundary (writing checkpoints when
 * --checkpoint-dir is set), and the daemon exits 0. The result cache and
 * dataset cache live in the working directory, exactly as for the
 * benches, so a daemon and batch runs share warm state.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/parse.hh"
#include "sim/simulator.hh"
#include "svc/server.hh"

using namespace gds;

namespace
{

/** Async-signal-safe: requestStop() is one relaxed atomic store. The
 *  serve loop polls the flag between accepts and drains. */
void
handleStopSignal(int)
{
    sim::requestStop();
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--workers N] "
                 "[--max-queue N]\n"
                 "       [--checkpoint-dir DIR] [--metrics-socket PATH] "
                 "[--trace FILE]\n",
                 argv0);
    std::exit(1);
}

svc::ServerConfig
parseArgs(int argc, char **argv)
{
    svc::ServerConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::optional<std::string> inline_value;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
            }
        }
        auto need_value = [&]() -> std::string {
            if (inline_value)
                return *inline_value;
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        // The same checked parser as gds_sim's flags and the daemon's
        // own request fields: garbage is a ConfigError, never a crash.
        auto need_u64 = [&](std::uint64_t min_v, std::uint64_t max_v) {
            return common::requireU64(arg, need_value(), min_v, max_v);
        };
        if (arg == "--socket")
            config.socketPath = need_value();
        else if (arg == "--workers")
            config.service.workers =
                static_cast<unsigned>(need_u64(1, 1024));
        else if (arg == "--max-queue")
            config.service.maxQueue =
                static_cast<std::size_t>(need_u64(1, 1 << 20));
        else if (arg == "--checkpoint-dir")
            config.service.checkpointDir = need_value();
        else if (arg == "--metrics-socket")
            config.metricsSocketPath = need_value();
        else if (arg == "--trace")
            config.service.tracePath = need_value();
        else
            usage(argv[0]);
    }
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    svc::ServerConfig config;
    try {
        config = parseArgs(argc, argv);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
    }

    sim::clearStopRequest();
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    svc::Server server(config);
    const Status status = server.serve();
    if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[0],
                     status.toString().c_str());
        return 1;
    }
    return 0;
}
