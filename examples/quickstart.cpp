/**
 * @file
 * Quickstart: build a graph, run BFS on the GraphDynS cycle-level
 * accelerator model, check the result against the functional reference,
 * and read the headline metrics.
 *
 *   $ ./examples/quickstart [edge-list-file]
 *
 * Without an argument a 64k-vertex RMAT graph is generated.
 */

#include <cstdio>

#include "algo/reference_engine.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "graph/loader.hh"

using namespace gds;

int
main(int argc, char **argv)
{
    // 1. Get a graph: load an edge list or synthesize an RMAT graph.
    graph::Csr g = argc > 1 ? graph::loadEdgeList(argv[1])
                            : graph::rmat(/*scale=*/16, /*edge_factor=*/16,
                                          /*seed=*/42);
    std::printf("graph: %u vertices, %llu edges (max degree %llu)\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                static_cast<unsigned long long>(
                    g.degreeStats().maxDegree));

    // 2. Pick an algorithm and a source vertex.
    auto bfs = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
    const VertexId source = algo::defaultSource(g);

    // 3. Run it on the accelerator model (Table 3 default configuration:
    //    16 SIMT-8 PEs, 128 UEs, 32 MB Vertex Buffer, 512 GB/s HBM).
    core::GdsConfig config;
    core::GdsAccel accelerator(config, g, *bfs);
    core::RunOptions options;
    options.source = source;
    const core::RunResult result = accelerator.run(options);

    std::printf("BFS from vertex %u finished in %u iterations\n", source,
                result.iterations);
    std::printf("  simulated time : %.3f ms (%llu cycles @ 1 GHz)\n",
                static_cast<double>(result.cycles) * 1e-6,
                static_cast<unsigned long long>(result.cycles));
    std::printf("  throughput     : %.1f GTEPS (ideal peak 128)\n",
                result.gteps());
    std::printf("  HBM traffic    : %.1f MB at %.0f%% bandwidth "
                "utilization\n",
                static_cast<double>(result.memoryBytes) / 1e6,
                result.bandwidthUtilization * 100.0);
    std::printf("  apply ops saved: %llu (Ready-to-Update bitmap)\n",
                static_cast<unsigned long long>(result.updatesSkipped));

    // 4. Verify against the functional reference engine.
    auto bfs_ref = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
    const auto golden = algo::runReference(g, *bfs_ref, source);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (result.properties[v] != golden.properties[v]) {
            std::printf("MISMATCH at vertex %u\n", v);
            return 1;
        }
    }
    std::printf("  verification   : accelerator result == reference "
                "result\n");

    // 5. Inspect a few properties (BFS levels).
    std::printf("sample levels:");
    for (VertexId v = 0; v < std::min<VertexId>(8, g.numVertices()); ++v)
        std::printf(" v%u=%.0f", v, result.properties[v]);
    std::printf("\n");
    return 0;
}
