/**
 * @file
 * Social-network analysis scenario (the paper's motivating domain):
 * rank influencers with PageRank and find communities with Connected
 * Components on a Pokec-like social graph, comparing all three systems
 * (GraphDynS, Graphicionado, Gunrock-on-V100) on time, traffic and
 * energy.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/experiment.hh"

using namespace gds;

int
main()
{
    std::printf("=== Social network analysis on the Pokec surrogate ===\n");
    const graph::Csr g = harness::loadDataset("PK", /*weighted=*/false);
    std::printf("graph: %u members, %llu follow edges\n\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    // --- PageRank: who are the influencers? ---
    std::printf("PageRank (10 iterations) on the three systems:\n");
    harness::Table table({"system", "time(ms)", "GTEPS", "traffic(MB)",
                          "energy(mJ)"});
    const auto gds = harness::runGds(algo::AlgorithmId::Pr, "PK", g);
    const auto gi =
        harness::runGraphicionado(algo::AlgorithmId::Pr, "PK", g);
    const auto gpu = harness::runGunrock(algo::AlgorithmId::Pr, "PK", g);
    for (const auto *r : {&gds, &gi, &gpu}) {
        table.addRow({r->system, harness::Table::num(r->seconds * 1e3, 3),
                      harness::Table::num(r->gteps, 1),
                      harness::Table::num(r->memoryBytes / 1e6, 1),
                      harness::Table::num(r->energyJoules * 1e3, 2)});
    }
    table.print();
    std::printf("GraphDynS speedup: %.2fx over Gunrock, %.2fx over "
                "Graphicionado\n\n",
                gpu.seconds / gds.seconds, gi.seconds / gds.seconds);

    // --- Influencer ranking from the accelerator's own output. ---
    auto pr = algo::makeAlgorithm(algo::AlgorithmId::Pr);
    core::GdsConfig cfg;
    cfg.maxIterations = 10;
    core::GdsAccel accel(cfg, g, *pr);
    const auto run = accel.run();
    std::vector<VertexId> order(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        order[v] = v;
    // The engine stores rank/out-degree; recover the rank.
    auto rank = [&](VertexId v) {
        return static_cast<double>(run.properties[v]) *
               std::max<std::uint64_t>(g.outDegree(v), 1);
    };
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](VertexId a, VertexId b) {
                          return rank(a) > rank(b);
                      });
    std::printf("top-5 influencers (vertex: rank, followees):\n");
    for (int i = 0; i < 5; ++i) {
        const VertexId v = order[i];
        std::printf("  #%d vertex %u: rank %.2e, out-degree %llu\n",
                    i + 1, v, rank(v),
                    static_cast<unsigned long long>(g.outDegree(v)));
    }

    // --- Connected components: community structure. ---
    auto cc = algo::makeAlgorithm(algo::AlgorithmId::Cc);
    core::GdsConfig cc_cfg;
    core::GdsAccel cc_accel(cc_cfg, g, *cc);
    const auto cc_run = cc_accel.run();
    std::vector<PropValue> labels = cc_run.properties;
    std::sort(labels.begin(), labels.end());
    const std::size_t components = static_cast<std::size_t>(
        std::unique(labels.begin(), labels.end()) - labels.begin());
    std::printf("\nConnected components: %zu weakly-connected groups "
                "found in %u iterations (%.3f ms simulated)\n",
                components, cc_run.iterations,
                static_cast<double>(cc_run.cycles) * 1e-6);
    return 0;
}
