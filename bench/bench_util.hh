/**
 * @file
 * Shared helpers for the figure-regeneration benches: banner printing and
 * the paper-expected vs measured footer every bench emits.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/datasets.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"

namespace gds::bench
{

/** Print the bench banner with the active scale divisor. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
    std::printf("datasets scaled by GDS_SCALE=%u "
                "(set GDS_SCALE=1 for paper-native sizes)\n\n",
                graph::datasetScaleDivisor());
}

/** Print one paper-expected vs measured line. */
inline void
expectation(const std::string &metric, const std::string &paper,
            const std::string &measured)
{
    std::printf("  %-44s paper: %-12s measured: %s\n", metric.c_str(),
                paper.c_str(), measured.c_str());
}

/**
 * Run (or reload) the shared 5x6x3 evaluation matrix every matrix bench
 * reads from, announcing the worker count so cold timings are
 * interpretable. Cached cells are reused; cold cells fan out over
 * GDS_JOBS workers (default: all hardware threads).
 */
inline std::vector<harness::RunRecord>
sharedMatrix(harness::ResultCache &cache)
{
    std::printf("evaluation matrix: cold cells run on GDS_JOBS=%u "
                "workers; cached cells are reused\n\n",
                harness::jobCount());
    return harness::evaluationMatrix(cache);
}

/**
 * Fetch one successful matrix cell, or announce the skip and return
 * nullptr. Benches drop the whole row when any system's cell is missing
 * or failed, so one wedged simulation never kills a figure.
 */
inline const harness::RunRecord *
cellOrSkip(const std::vector<harness::RunRecord> &records,
           const std::string &system, const std::string &algorithm,
           const std::string &dataset)
{
    const harness::RunRecord *r =
        harness::tryFindRecord(records, system, algorithm, dataset);
    if (!r) {
        std::printf("  [skip] %s %s/%s: cell missing or failed\n",
                    system.c_str(), algorithm.c_str(), dataset.c_str());
    }
    return r;
}

} // namespace gds::bench
