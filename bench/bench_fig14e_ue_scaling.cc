/**
 * @file
 * Fig. 14e: performance over the number of Updating Elements
 * {256, 128, 64, 32} on LiveJournal, normalized to 128 UEs. Paper:
 * high-throughput algorithms are the most sensitive -- PR slows by 53%
 * and CC by 20% from 128 to 32 UEs (crossbar output contention).
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 14e",
                  "performance vs number of UEs, normalized to 128 (LJ)");

    harness::ResultCache cache;
    const graph::Csr weighted = harness::loadDataset("LJ", true);
    const graph::Csr unweighted = harness::loadDataset("LJ", false);
    const unsigned ue_counts[] = {256, 128, 64, 32};

    Table table({"algo", "256", "128", "64", "32"});
    std::map<algo::AlgorithmId, std::map<unsigned, double>> seconds;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool w = algo::makeAlgorithm(id)->usesWeights();
        const graph::Csr &g = w ? weighted : unweighted;
        for (const unsigned ues : ue_counts) {
            const std::string tag =
                ues == 128 ? "gds" : "gds-ue" + std::to_string(ues);
            const auto record = cache.getOrRun(
                harness::cellKey(tag, id, "LJ"), [&] {
                    core::GdsConfig cfg;
                    cfg.numUes = ues;
                    return harness::runGds(id, "LJ", g,
                                           harness::GdsVariant::Full,
                                           &cfg);
                });
            seconds[id][ues] = record.seconds;
        }
        std::vector<std::string> row{algo::algorithmName(id)};
        for (const unsigned ues : ue_counts) {
            row.push_back(Table::num(
                seconds[id][128] / seconds[id][ues] * 100.0, 1));
        }
        table.addRow(std::move(row));
    }
    table.print();

    const double pr_32 = seconds[algo::AlgorithmId::Pr][128] /
                         seconds[algo::AlgorithmId::Pr][32] * 100.0;
    const double cc_32 = seconds[algo::AlgorithmId::Cc][128] /
                         seconds[algo::AlgorithmId::Cc][32] * 100.0;
    std::printf("\nShape vs paper:\n");
    bench::expectation("PR performance at 32 UEs (vs 128)", "47%",
                       Table::num(pr_32, 0) + "%");
    bench::expectation("CC performance at 32 UEs (vs 128)", "80%",
                       Table::num(cc_32, 0) + "%");
    return 0;
}
