/**
 * @file
 * Fig. 14a: reduction in Dispatcher scheduling operations from the
 * workload-balanced batch dispatch, per algorithm on LiveJournal.
 * Without WB every edge is a scheduling operation; with WB a whole
 * sub-threshold edge list (or an eListSize chunk) is one operation.
 * Paper: ~94% fewer scheduling operations on average, with 16 DEs
 * instead of 128.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 14a",
                  "scheduling-operation reduction from workload-balanced "
                  "dispatch (LJ)");

    harness::ResultCache cache;
    const graph::Csr weighted = harness::loadDataset("LJ", true);
    const graph::Csr unweighted = harness::loadDataset("LJ", false);

    Table table({"algo", "ops(noWB)", "ops(WB)", "reduction(%)"});
    std::vector<double> reductions;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool w = algo::makeAlgorithm(id)->usesWeights();
        const graph::Csr &g = w ? weighted : unweighted;
        const auto no_wb = cache.getOrRun(
            harness::cellKey("gds-noWB", id, "LJ"), [&] {
                return harness::runGds(id, "LJ", g,
                                       harness::GdsVariant::NoWb);
            });
        const auto full = cache.getOrRun(
            harness::cellKey("gds", id, "LJ"), [&] {
                return harness::runGds(id, "LJ", g);
            });
        const double reduction =
            (1.0 - full.schedulingOps / no_wb.schedulingOps) * 100.0;
        reductions.push_back(reduction);
        table.addRow({algo::algorithmName(id),
                      Table::num(no_wb.schedulingOps, 0),
                      Table::num(full.schedulingOps, 0),
                      Table::num(reduction, 1)});
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (const double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    table.addRow({"MEAN", "-", "-", Table::num(mean(reductions), 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("scheduling operations reduced", "~94%",
                       Table::num(mean(reductions), 0) + "%");
    bench::expectation("dispatcher size", "16 DEs (was 128)",
                       "16 DEs (config)");
    return 0;
}
