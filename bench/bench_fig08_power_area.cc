/**
 * @file
 * Fig. 8: power and area breakdown of GraphDynS from the 16 nm component
 * model (the role of Synopsys DC / PrimeTime / Cacti in the paper).
 * Paper totals: 3.38 W and 12.08 mm2; Dispatcher/Processor/Updater/
 * Prefetcher split 1/59/36/4 % of power and ~0/8/90/2 % of area.
 */

#include "bench_util.hh"

#include "energy/energy_model.hh"
#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 8", "GraphDynS power and area breakdown");

    energy::EnergyModel model;
    const auto b = model.gdsBreakdown(core::GdsConfig{});
    const double pw = b.totalPowerW();
    const double ar = b.totalAreaMm2();

    Table table({"component", "power(W)", "power(%)", "area(mm2)",
                 "area(%)"});
    auto row = [&](const char *name, const energy::ModuleCost &m) {
        table.addRow({name, Table::num(m.powerW, 3),
                      Table::num(m.powerW / pw * 100.0, 1),
                      Table::num(m.areaMm2, 3),
                      Table::num(m.areaMm2 / ar * 100.0, 1)});
    };
    row("Dispatcher", b.dispatcher);
    row("Processor", b.processor);
    row("Updater", b.updater);
    row("Prefetcher", b.prefetcher);
    table.addRow({"TOTAL", Table::num(pw, 2), "100.0", Table::num(ar, 2),
                  "100.0"});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("total power", "3.38 W", Table::num(pw, 2) + " W");
    bench::expectation("total area", "12.08 mm2",
                       Table::num(ar, 2) + " mm2");
    bench::expectation("Processor power share", "59%",
                       Table::num(b.processor.powerW / pw * 100.0, 0) +
                           "%");
    bench::expectation("Updater area share", "90%",
                       Table::num(b.updater.areaMm2 / ar * 100.0, 0) + "%");

    const auto gi =
        model.graphicionadoBreakdown(baseline::GraphicionadoConfig{});
    bench::expectation("GraphDynS/Graphicionado power", "68%",
                       Table::num(pw / gi.totalPowerW() * 100.0, 0) + "%");
    bench::expectation("GraphDynS/Graphicionado area", "57%",
                       Table::num(ar / gi.totalAreaMm2() * 100.0, 0) + "%");
    return 0;
}
