/**
 * @file
 * Fig. 14b: normalized workload across the 16 PEs during the heaviest
 * iterations of SSWP on LiveJournal. With workload-balanced dispatch the
 * per-PE load stays within ~2% of the mean (the paper plots ~1.00).
 */

#include "bench_util.hh"

#include <algorithm>

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 14b",
                  "normalized per-PE workload, heaviest SSWP iterations "
                  "(LJ)");

    const graph::Csr g = harness::loadDataset("LJ", true);
    core::GdsConfig cfg;
    auto sswp = algo::makeAlgorithm(algo::AlgorithmId::Sswp);
    core::GdsAccel accel(cfg, g, *sswp);
    core::RunOptions options;
    options.source = harness::sourceFor(algo::AlgorithmId::Sswp, g);
    options.collectPeLoads = true;
    const auto run = accel.run(options);

    // Pick the 8 heaviest iterations by total edges.
    std::vector<std::size_t> order(run.peLoads.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto total = [&](std::size_t i) {
        std::uint64_t t = 0;
        for (const auto l : run.peLoads[i])
            t += l;
        return t;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return total(a) > total(b);
              });
    const std::size_t shown = std::min<std::size_t>(8, order.size());

    std::vector<std::string> header{"PE"};
    for (std::size_t k = 0; k < shown; ++k)
        header.push_back("iter" + std::to_string(order[k] + 1));
    Table table(std::move(header));

    double worst = 0.0;
    for (unsigned pe = 0; pe < cfg.numPes; ++pe) {
        std::vector<std::string> row{std::to_string(pe + 1)};
        for (std::size_t k = 0; k < shown; ++k) {
            const auto &loads = run.peLoads[order[k]];
            const double mean =
                static_cast<double>(total(order[k])) / loads.size();
            const double norm = static_cast<double>(loads[pe]) / mean;
            worst = std::max(worst, std::abs(norm - 1.0));
            row.push_back(Table::num(norm, 3));
        }
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("per-PE load in heaviest iterations", "1.00 +- 0.02",
                       "1.00 +- " + Table::num(worst, 3));
    return 0;
}
