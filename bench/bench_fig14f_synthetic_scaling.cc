/**
 * @file
 * Fig. 14f: PR throughput over the five RMAT graphs (scale 22-26,
 * edge-to-vertex ratio 16) for GraphDynS and Graphicionado. Paper: both
 * scale well; GraphDynS slows slightly on the largest graphs once
 * slicing causes repetitive active-vertex accesses, and Graphicionado
 * (with 2x the on-chip capacity) degrades more gradually.
 *
 * Set GDS_RMAT_MAX=24 (etc.) to trim the sweep on small machines.
 */

#include "bench_util.hh"

#include "common/parse.hh"
#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 14f",
                  "PR throughput (GTEPS) on RMAT scale 22-26");

    const unsigned max_scale = static_cast<unsigned>(
        common::parseEnvU64("GDS_RMAT_MAX", 26, 1, 40));

    harness::ResultCache cache;
    Table table({"graph", "|V|", "|E|", "Graphicionado", "GraphDynS",
                 "GDS slices"});
    std::vector<double> gds_series;
    std::vector<double> gi_series;
    for (const auto &spec : graph::rmatDatasets()) {
        if (spec.rmatScale > max_scale)
            continue;
        const graph::Csr g = harness::loadDataset(spec.name, false);
        const auto gds = cache.getOrRun(
            harness::cellKey("gds", algo::AlgorithmId::Pr, spec.name),
            [&] {
                return harness::runGds(algo::AlgorithmId::Pr, spec.name,
                                       g);
            });
        const auto gi = cache.getOrRun(
            harness::cellKey("graphicionado", algo::AlgorithmId::Pr,
                             spec.name),
            [&] {
                return harness::runGraphicionado(algo::AlgorithmId::Pr,
                                                 spec.name, g);
            });
        core::GdsConfig cfg;
        const unsigned slices =
            graph::numSlices(g.numVertices(), cfg.sliceCapacity());
        gds_series.push_back(gds.gteps);
        gi_series.push_back(gi.gteps);
        table.addRow({spec.name, std::to_string(g.numVertices()),
                      std::to_string(g.numEdges()),
                      Table::num(gi.gteps, 1), Table::num(gds.gteps, 1),
                      std::to_string(slices)});
    }
    table.print();

    std::printf("\nShape vs paper:\n");
    if (gds_series.size() >= 2) {
        const double gds_drop =
            gds_series.back() / gds_series.front() * 100.0;
        bench::expectation("GraphDynS throughput retained at top scale",
                           "slight slowdown",
                           Table::num(gds_drop, 0) + "% of smallest");
        bench::expectation("both systems scale to the largest graphs",
                           "yes",
                           (gds_series.back() > 0 && gi_series.back() > 0)
                               ? "yes"
                               : "no");
    }
    return 0;
}
