/**
 * @file
 * Fig. 6: speedup of Graphicionado and GraphDynS over Gunrock, per
 * algorithm and dataset, with the geometric-mean column the paper quotes
 * (GraphDynS 4.4x over Gunrock with half the memory bandwidth; 1.9x over
 * Graphicionado with the same bandwidth). Also prints the Table 3 system
 * configurations.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 6", "speedup over Gunrock (higher is better)");

    std::printf("Table 3 systems: GraphDynS 1GHz 16xSIMT8, 32MB eDRAM, "
                "512GB/s HBM | Graphicionado 1GHz 128 streams, 64MB eDRAM, "
                "512GB/s HBM | Gunrock V100 1.25GHz 5120 cores, "
                "900GB/s HBM2\n\n");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);

    Table table({"algo", "dataset", "Graphicionado", "GraphDynS",
                 "GDS/GI"});
    std::vector<double> gi_speedups;
    std::vector<double> gds_speedups;
    std::vector<double> gds_over_gi;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gpu =
                bench::cellOrSkip(records, "Gunrock", a, spec.name);
            const auto *gi = bench::cellOrSkip(records, "Graphicionado",
                                               a, spec.name);
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gpu || !gi || !gds)
                continue;
            const double s_gi = gpu->seconds / gi->seconds;
            const double s_gds = gpu->seconds / gds->seconds;
            gi_speedups.push_back(s_gi);
            gds_speedups.push_back(s_gds);
            gds_over_gi.push_back(gi->seconds / gds->seconds);
            table.addRow({a, spec.name, Table::num(s_gi),
                          Table::num(s_gds), Table::num(s_gds / s_gi)});
        }
    }
    const double gm_gi = harness::geometricMean(gi_speedups);
    const double gm_gds = harness::geometricMean(gds_speedups);
    const double gm_ratio = harness::geometricMean(gds_over_gi);
    table.addRow({"GM", "all", Table::num(gm_gi), Table::num(gm_gds),
                  Table::num(gm_ratio)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("GraphDynS speedup over Gunrock (GM)", "4.4x",
                       Table::num(gm_gds) + "x");
    bench::expectation("GraphDynS speedup over Graphicionado (GM)",
                       "1.9x", Table::num(gm_ratio) + "x");
    bench::expectation("GraphDynS uses half of Gunrock's bandwidth",
                       "512 vs 900 GB/s", "512 vs 900 GB/s (by config)");
    return 0;
}
