/**
 * @file
 * Fig. 10: GraphDynS energy breakdown per component. Paper: ~92% of the
 * energy goes to off-chip memory (HBM); the Processor consumes ~4.0%,
 * the Updater ~3.0%, everything else under 0.8%.
 */

#include "bench_util.hh"

#include "energy/energy_model.hh"
#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 10", "GraphDynS energy breakdown (percent)");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);
    energy::EnergyModel model;
    core::GdsConfig cfg;

    Table table({"algo", "dataset", "Prefetcher", "Dispatcher",
                 "Processor", "Updater", "HBM"});
    std::vector<double> hbm_share;
    std::vector<double> proc_share;
    std::vector<double> upd_share;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gds)
                continue;
            const auto e = model.gdsEnergy(
                cfg, static_cast<Cycle>(gds->seconds * 1e9),
                static_cast<std::uint64_t>(gds->memoryBytes));
            const double total = e.totalJ();
            hbm_share.push_back(e.hbmJ / total * 100);
            proc_share.push_back(e.processorJ / total * 100);
            upd_share.push_back(e.updaterJ / total * 100);
            table.addRow({a, spec.name,
                          Table::num(e.prefetcherJ / total * 100, 2),
                          Table::num(e.dispatcherJ / total * 100, 2),
                          Table::num(e.processorJ / total * 100, 2),
                          Table::num(e.updaterJ / total * 100, 2),
                          Table::num(e.hbmJ / total * 100, 2)});
        }
    }
    table.print();

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (const double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    std::printf("\nShape vs paper:\n");
    bench::expectation("HBM share of total energy", "92.2%",
                       Table::num(mean(hbm_share), 1) + "%");
    bench::expectation("Processor share", "4.0%",
                       Table::num(mean(proc_share), 1) + "%");
    bench::expectation("Updater share", "3.0%",
                       Table::num(mean(upd_share), 1) + "%");
    return 0;
}
