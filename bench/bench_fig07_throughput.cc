/**
 * @file
 * Fig. 7: throughput in GTEPS for the three systems, per algorithm and
 * dataset. Paper aggregates: GraphDynS 43 GTEPS, Graphicionado 21,
 * Gunrock 8 (geometric means); ideal peak 128 GTEPS; PR on GraphDynS
 * averages 87.5 GTEPS.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 7", "throughput in GTEPS (ideal peak: 128)");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);

    Table table({"algo", "dataset", "Gunrock", "Graphicionado",
                 "GraphDynS"});
    std::vector<double> gpu_all;
    std::vector<double> gi_all;
    std::vector<double> gds_all;
    std::vector<double> gds_pr;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gpu =
                bench::cellOrSkip(records, "Gunrock", a, spec.name);
            const auto *gi = bench::cellOrSkip(records, "Graphicionado",
                                               a, spec.name);
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gpu || !gi || !gds)
                continue;
            gpu_all.push_back(gpu->gteps);
            gi_all.push_back(gi->gteps);
            gds_all.push_back(gds->gteps);
            if (id == algo::AlgorithmId::Pr)
                gds_pr.push_back(gds->gteps);
            table.addRow({a, spec.name, Table::num(gpu->gteps, 1),
                          Table::num(gi->gteps, 1),
                          Table::num(gds->gteps, 1)});
        }
    }
    table.addRow({"GM", "all",
                  Table::num(harness::geometricMean(gpu_all), 1),
                  Table::num(harness::geometricMean(gi_all), 1),
                  Table::num(harness::geometricMean(gds_all), 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("GraphDynS mean GTEPS", "43",
                       Table::num(harness::geometricMean(gds_all), 1));
    bench::expectation("Graphicionado mean GTEPS", "21",
                       Table::num(harness::geometricMean(gi_all), 1));
    bench::expectation("Gunrock mean GTEPS", "8",
                       Table::num(harness::geometricMean(gpu_all), 1));
    bench::expectation("GraphDynS PR mean GTEPS", "87.5",
                       Table::num(harness::geometricMean(gds_pr), 1));
    return 0;
}
