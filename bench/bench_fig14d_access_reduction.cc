/**
 * @file
 * Fig. 14d: reduction of off-chip data access from exact prefetching
 * (EP: WE vs WB) and from update scheduling (US: WEAU vs WEA) on
 * LiveJournal. Paper: EP removes ~30% of the traffic, US ~18%; BFS
 * benefits the most from US (up to 55% fewer accesses), PR not at all.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::GdsVariant;
using harness::Table;

int
main()
{
    bench::banner("Fig. 14d",
                  "off-chip access reduction from EP and US (LJ)");

    harness::ResultCache cache;
    const graph::Csr weighted = harness::loadDataset("LJ", true);
    const graph::Csr unweighted = harness::loadDataset("LJ", false);

    Table table({"algo", "EP reduction(%)", "US reduction(%)"});
    std::vector<double> ep_all;
    std::vector<double> us_all;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool w = algo::makeAlgorithm(id)->usesWeights();
        const graph::Csr &g = w ? weighted : unweighted;
        auto cell = [&](GdsVariant v) {
            const std::string tag =
                v == GdsVariant::Full ? "gds"
                                      : "gds-" + harness::variantName(v);
            return cache.getOrRun(harness::cellKey(tag, id, "LJ"), [&] {
                return harness::runGds(id, "LJ", g, v);
            });
        };
        const auto wb = cell(GdsVariant::Wb);
        const auto we = cell(GdsVariant::We);
        const auto wea = cell(GdsVariant::Wea);
        const auto weau = cell(GdsVariant::Full);
        const double ep = (1.0 - we.memoryBytes / wb.memoryBytes) * 100.0;
        const double us =
            (1.0 - weau.memoryBytes / wea.memoryBytes) * 100.0;
        ep_all.push_back(ep);
        us_all.push_back(us);
        table.addRow({algo::algorithmName(id), Table::num(ep, 1),
                      Table::num(us, 1)});
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (const double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    table.addRow({"MEAN", Table::num(mean(ep_all), 1),
                  Table::num(mean(us_all), 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("exact prefetching traffic reduction", "~30%",
                       Table::num(mean(ep_all), 0) + "%");
    bench::expectation("update scheduling traffic reduction", "~18%",
                       Table::num(mean(us_all), 0) + "%");
    bench::expectation("US reduction on PR", "~0%",
                       Table::num(us_all[4], 1) + "%");
    return 0;
}
