/**
 * @file
 * Fig. 2 (motivation): per-iteration active-vertex degree histogram and
 * vertex-update counts for SSSP on the Flickr dataset. Demonstrates the
 * three irregularities: degrees of simultaneously-active vertices span
 * 1 to >64, and most iterations update only a small fraction of vertices.
 */

#include "bench_util.hh"

#include "algo/reference_engine.hh"
#include "harness/experiment.hh"

using namespace gds;

int
main()
{
    bench::banner("Fig. 2",
                  "active-vertex degree mix and vertex updates per "
                  "iteration (SSSP on Flickr)");

    const graph::Csr g = harness::loadDataset("FR", /*weighted=*/true);
    auto sssp = algo::makeAlgorithm(algo::AlgorithmId::Sssp);

    algo::ReferenceOptions options;
    options.collectTrace = true;
    const auto result = algo::runReference(
        g, *sssp, harness::sourceFor(algo::AlgorithmId::Sssp, g), options);

    harness::Table table({"iter", "[0,0]", "[1,2]", "[3,4]", "[5,8]",
                          "[9,16]", "[17,32]", "[33,64]", ">64",
                          "#active", "#update"});
    const unsigned shown =
        std::min<unsigned>(25, static_cast<unsigned>(result.trace.size()));
    for (unsigned i = 0; i < shown; ++i) {
        const auto &t = result.trace[i];
        std::vector<std::string> row{std::to_string(t.iteration)};
        for (const auto bucket : t.degreeHistogram)
            row.push_back(std::to_string(bucket));
        row.push_back(std::to_string(t.activeVertices));
        row.push_back(std::to_string(t.vertexUpdates));
        table.addRow(std::move(row));
    }
    table.print();

    // Aggregate shape checks from the paper's text.
    const VertexId v_count = g.numVertices();
    unsigned small_update_iters = 0;
    for (const auto &t : result.trace) {
        if (t.vertexUpdates * 10 < v_count)
            ++small_update_iters;
    }
    const double small_frac =
        static_cast<double>(small_update_iters) / result.trace.size();

    std::printf("\nShape vs paper:\n");
    bench::expectation("iterations updating <10%% of vertices", "~76%",
                       harness::Table::num(small_frac * 100.0, 0) + "%");
    std::uint64_t over64 = 0;
    std::uint64_t actives = 0;
    for (const auto &t : result.trace) {
        over64 += t.degreeHistogram[7];
        actives += t.activeVertices;
    }
    bench::expectation("degree spread reaches >64 bucket", "yes",
                       over64 > 0 ? "yes" : "no");
    std::printf("  total iterations: %u, total activations: %llu\n",
                result.iterations,
                static_cast<unsigned long long>(actives));
    return 0;
}
