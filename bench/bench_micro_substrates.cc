/**
 * @file
 * google-benchmark microbenchmarks of the substrates: HBM model service
 * rates under streaming vs random traffic, graph generation, CSR
 * traversal, the functional reference engine, and a small end-to-end
 * GraphDynS run. These measure *simulator* performance (host wall time),
 * complementing the figure benches which report *simulated* metrics.
 */

#include <benchmark/benchmark.h>

#include "algo/reference_engine.hh"
#include "common/bitutil.hh"
#include "common/rng.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "mem/hbm.hh"

using namespace gds;

namespace
{

void
BM_HbmStreaming(benchmark::State &state)
{
    mem::HbmConfig cfg;
    for (auto _ : state) {
        mem::Hbm hbm(cfg, nullptr);
        mem::HbmPort port;
        Addr addr = 0;
        for (Cycle c = 0; c < 10000; ++c) {
            while (hbm.access(addr, 512, false, addr, &port))
                addr += 512;
            hbm.tick();
            while (port.hasResponse())
                port.popResponse();
        }
        benchmark::DoNotOptimize(hbm.totalBytes());
        state.counters["simGBps"] = benchmark::Counter(
            hbm.totalBytes() / 10000.0, benchmark::Counter::kDefaults);
    }
}
BENCHMARK(BM_HbmStreaming)->Unit(benchmark::kMillisecond);

void
BM_HbmRandom(benchmark::State &state)
{
    mem::HbmConfig cfg;
    for (auto _ : state) {
        mem::Hbm hbm(cfg, nullptr);
        mem::HbmPort port;
        Rng rng(1);
        for (Cycle c = 0; c < 10000; ++c) {
            for (int k = 0; k < 16; ++k) {
                const Addr addr =
                    alignDown(rng.below(1ULL << 28), 32);
                if (!hbm.access(addr, 32, false, c, &port))
                    break;
            }
            hbm.tick();
            while (port.hasResponse())
                port.popResponse();
        }
        benchmark::DoNotOptimize(hbm.totalBytes());
    }
}
BENCHMARK(BM_HbmRandom)->Unit(benchmark::kMillisecond);

void
BM_RmatGeneration(benchmark::State &state)
{
    const auto scale = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto g = graph::rmat(scale, 16, 7);
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * (16LL << state.range(0)));
}
BENCHMARK(BM_RmatGeneration)->Arg(14)->Arg(16)->Unit(
    benchmark::kMillisecond);

void
BM_PowerLawGeneration(benchmark::State &state)
{
    const auto v = static_cast<VertexId>(state.range(0));
    for (auto _ : state) {
        const auto g = graph::powerLaw(v, 16ULL * v, 0.6, 7);
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * 16LL * state.range(0));
}
BENCHMARK(BM_PowerLawGeneration)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void
BM_ReferenceEngineBfs(benchmark::State &state)
{
    const auto g = graph::rmat(static_cast<unsigned>(state.range(0)), 16,
                               9, {}, true);
    auto bfs = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
    const VertexId source = algo::defaultSource(g);
    for (auto _ : state) {
        const auto r = algo::runReference(g, *bfs, source);
        benchmark::DoNotOptimize(r.totalEdgesProcessed);
    }
}
BENCHMARK(BM_ReferenceEngineBfs)->Arg(14)->Arg(16)->Unit(
    benchmark::kMillisecond);

void
BM_ReferenceEnginePr(benchmark::State &state)
{
    const auto g = graph::rmat(static_cast<unsigned>(state.range(0)), 16,
                               9, {}, true);
    auto pr = algo::makeAlgorithm(algo::AlgorithmId::Pr);
    for (auto _ : state) {
        algo::ReferenceOptions options;
        options.maxIterations = 10;
        const auto r = algo::runReference(g, *pr, 0, options);
        benchmark::DoNotOptimize(r.totalEdgesProcessed);
    }
}
BENCHMARK(BM_ReferenceEnginePr)->Arg(14)->Arg(16)->Unit(
    benchmark::kMillisecond);

void
BM_GdsAccelBfsEndToEnd(benchmark::State &state)
{
    const auto g = graph::rmat(static_cast<unsigned>(state.range(0)), 16,
                               11, {}, true);
    for (auto _ : state) {
        core::GdsConfig cfg;
        auto bfs = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
        core::GdsAccel accel(cfg, g, *bfs);
        core::RunOptions options;
        options.source = algo::defaultSource(g);
        const auto r = accel.run(options);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["simGTEPS"] =
            benchmark::Counter(r.gteps(), benchmark::Counter::kDefaults);
    }
}
BENCHMARK(BM_GdsAccelBfsEndToEnd)->Arg(12)->Arg(14)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
