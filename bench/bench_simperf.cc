/**
 * @file
 * Self-performance benchmark of the cycle engine: simulated cycles per
 * wall-second and traversed edges per wall-second for each workload, across
 * {naive, fast-forward} x {telemetry off, telemetry on}. Every cell pair is
 * also an equivalence check — the fast-forwarded run must report exactly
 * the naive cycle count, edge count and iteration count, and the bench
 * exits nonzero on any mismatch.
 *
 * Workloads cover both ends of the idleness spectrum: BFS on a 2D ribbon
 * grid (road-network-like; tiny frontiers leave the datapath waiting on
 * memory almost permanently), the same ribbon against a latency-amplified
 * far-memory tier (every wait stretches to hundreds of cycles while the
 * busy work stays constant — the truly memory-bound cell the >=3x
 * acceptance target is measured on), BFS and PR on RMAT (social-network
 * skew; busier pipelines, smaller but still real wins), and BFS on the
 * Graphicionado baseline.
 *
 * Writes BENCH_simperf.json next to the binary's working directory.
 * --quick shrinks the graphs for CI smoke runs.
 */

#include "bench_util.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "algo/vcpm.hh"
#include "baseline/graphicionado.hh"
#include "common/rss.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "harness/walltime.hh"
#include "mem/hbm.hh"
#include "stats/json.hh"

using namespace gds;

namespace
{

struct Workload
{
    std::string name;      ///< JSON key, e.g. "gds/bfs/grid"
    std::string what;      ///< human description for the table
    std::function<graph::Csr()> make;
    algo::AlgorithmId algorithm = algo::AlgorithmId::Bfs;
    bool graphicionado = false;
    unsigned maxIterations = 1000;
    /**
     * Multiply the HBM core timings (tCl/tRcd/tRp) by this factor,
     * modelling a far-memory tier (e.g. CXL-attached or disaggregated
     * DRAM). 1 keeps the paper's HBM 1.0 timing.
     */
    Cycle memLatencyScale = 1;
};

struct CellResult
{
    double wallSeconds = 0.0;
    Cycle cycles = 0;
    std::uint64_t edges = 0;
    unsigned iterations = 0;
    bool completed = false;
    Cycle steppedCycles = 0;
    Cycle skippedCycles = 0;
    std::uint64_t skipWindows = 0;
    /** Process peak RSS after this cell (high-water mark, monotone
     *  across the bench run); 0 when the probe is unavailable. */
    std::uint64_t peakRssBytes = 0;
};

CellResult
runCellOnce(const Workload &w, const graph::Csr &g, bool fast_forward,
            bool telemetry)
{
    auto algorithm = algo::makeAlgorithm(w.algorithm);
    core::RunOptions run;
    run.source = 0;
    run.fastForward = fast_forward;
    obs::Tracer tracer;
    obs::Sampler sampler;
    std::optional<obs::ScopedActiveTracer> scope;
    if (telemetry) {
        sampler.setInterval(1000);
        run.sampler = &sampler;
        run.traceCounterInterval = 1000;
        scope.emplace(&tracer);
    }

    const auto stretch = [&w](mem::HbmConfig &hbm) {
        hbm.tCl *= w.memLatencyScale;
        hbm.tRcd *= w.memLatencyScale;
        hbm.tRp *= w.memLatencyScale;
    };

    CellResult cell;
    core::RunResult result;
    if (w.graphicionado) {
        baseline::GraphicionadoConfig cfg;
        cfg.maxIterations = w.maxIterations;
        stretch(cfg.hbm);
        baseline::GraphicionadoAccel accel(cfg, g, *algorithm);
        const harness::ScopedWallTimer timer(cell.wallSeconds);
        result = accel.run(run);
    } else {
        core::GdsConfig cfg;
        cfg.maxIterations = w.maxIterations;
        stretch(cfg.hbm);
        core::GdsAccel accel(cfg, g, *algorithm);
        const harness::ScopedWallTimer timer(cell.wallSeconds);
        result = accel.run(run);
    }
    cell.cycles = result.cycles;
    cell.edges = result.edgesProcessed;
    cell.iterations = result.iterations;
    cell.completed = result.completed();
    cell.steppedCycles = result.report.steppedCycles;
    cell.skippedCycles = result.report.skippedCycles;
    cell.skipWindows = result.report.skipWindows;
    cell.peakRssBytes = common::peakRssBytes();
    return cell;
}

/**
 * Repeat a cell and keep the fastest wall time: on a shared/noisy host the
 * minimum is the least-biased estimate of the simulator's true cost. The
 * simulated numbers are deterministic and must agree across repeats.
 */
CellResult
runCell(const Workload &w, const graph::Csr &g, bool fast_forward,
        bool telemetry, unsigned repeats)
{
    CellResult best = runCellOnce(w, g, fast_forward, telemetry);
    for (unsigned r = 1; r < repeats; ++r) {
        const CellResult again = runCellOnce(w, g, fast_forward, telemetry);
        gds_assert(again.cycles == best.cycles,
                   "nondeterministic simulation across bench repeats");
        best.wallSeconds = std::min(best.wallSeconds, again.wallSeconds);
    }
    return best;
}

double
rate(double numerator, double seconds)
{
    return seconds > 0.0 ? numerator / seconds : 0.0;
}

void
emitCellJson(std::ostream &os, const Workload &w, const char *mode,
             bool telemetry, const CellResult &cell, double speedup)
{
    os << "    {\"workload\":";
    stats::emitJsonString(os, w.name);
    os << ",\"mode\":";
    stats::emitJsonString(os, mode);
    os << ",\"telemetry\":" << (telemetry ? "true" : "false")
       << ",\"completed\":" << (cell.completed ? "true" : "false")
       << ",\"simCycles\":" << cell.cycles
       << ",\"edges\":" << cell.edges
       << ",\"iterations\":" << cell.iterations << ",\"wallSeconds\":";
    stats::emitJsonNumber(os, cell.wallSeconds);
    os << ",\"cyclesPerSecond\":";
    stats::emitJsonNumber(
        os, rate(static_cast<double>(cell.cycles), cell.wallSeconds));
    os << ",\"edgesPerSecond\":";
    stats::emitJsonNumber(
        os, rate(static_cast<double>(cell.edges), cell.wallSeconds));
    os << ",\"steppedCycles\":" << cell.steppedCycles
       << ",\"skippedCycles\":" << cell.skippedCycles
       << ",\"skipWindows\":" << cell.skipWindows
       << ",\"peakRssBytes\":" << cell.peakRssBytes
       << ",\"speedupVsNaive\":";
    stats::emitJsonNumber(os, speedup);
    os << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned repeats = 3;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeats = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
            only = argv[++i];
        } else {
            std::printf("usage: %s [--quick] [--repeat N] "
                        "[--workload substring]\n", argv[0]);
            return 2;
        }
    }

    bench::banner("simperf",
                  quick ? "simulator self-performance (quick smoke)"
                        : "simulator self-performance");

    std::vector<Workload> workloads;
    workloads.push_back(
        {"gds/bfs/grid", "BFS, ribbon grid (latency-bound)",
         [quick] {
             // A narrow, long grid: road-network-like huge diameter and a
             // frontier of a handful of vertices, so every BFS level is a
             // few small requests followed by a full HBM round-trip wait.
             return graph::grid2d(4, quick ? 2048 : 8192, 7, false);
         },
         algo::AlgorithmId::Bfs, false, 100000});
    workloads.push_back(
        {"gds/bfs/grid-slowmem",
         "BFS, ribbon grid, far-memory tier (memory-bound; >=3x target)",
         [quick] {
             // Same ribbon, but against a 16x-latency far-memory tier:
             // every per-level round trip stretches to hundreds of pure
             // wait cycles while the busy work per level is unchanged, so
             // nearly all simulated time is skippable. This is the
             // memory-bound cell the >=3x acceptance target measures.
             return graph::grid2d(4, quick ? 1024 : 4096, 7, false);
         },
         algo::AlgorithmId::Bfs, false, 100000, 16});
    workloads.push_back(
        {"gds/bfs/rmat", "BFS, RMAT (social-network skew)",
         [quick] { return graph::rmat(quick ? 10 : 13, 16, 42, {}, false); },
         algo::AlgorithmId::Bfs, false, 1000});
    workloads.push_back(
        {"gds/pr/rmat", "PR, RMAT (compute-heavy)",
         [quick] { return graph::rmat(quick ? 9 : 12, 16, 42, {}, false); },
         algo::AlgorithmId::Pr, false, quick ? 10u : 20u});
    workloads.push_back(
        {"graphicionado/bfs/rmat", "BFS, RMAT, Graphicionado baseline",
         [quick] { return graph::rmat(quick ? 10 : 12, 16, 42, {}, false); },
         algo::AlgorithmId::Bfs, true, 1000});

    std::ofstream json("BENCH_simperf.json");
    json << "{\n  \"bench\": \"simperf\",\n  \"quick\": "
         << (quick ? "true" : "false") << ",\n  \"cells\": [\n";

    bool mismatch = false;
    bool first_cell = true;
    double target_speedup_quiet = 0.0;
    for (const Workload &w : workloads) {
        if (!only.empty() && w.name.find(only) == std::string::npos)
            continue;
        const graph::Csr g = w.make();
        std::printf("%s  (|V|=%llu |E|=%llu)\n", w.what.c_str(),
                    static_cast<unsigned long long>(g.numVertices()),
                    static_cast<unsigned long long>(g.numEdges()));
        for (const bool telemetry : {false, true}) {
            const CellResult naive = runCell(w, g, false, telemetry, repeats);
            const CellResult fast = runCell(w, g, true, telemetry, repeats);
            const double speedup =
                fast.wallSeconds > 0.0
                    ? naive.wallSeconds / fast.wallSeconds
                    : 0.0;
            if (w.name == "gds/bfs/grid-slowmem" && !telemetry)
                target_speedup_quiet = speedup;
            std::printf("  telemetry %-3s  naive %8.3fs %11.3g cyc/s | "
                        "ff %8.3fs %11.3g cyc/s | speedup %5.2fx | "
                        "%llu cycles\n",
                        telemetry ? "on" : "off", naive.wallSeconds,
                        rate(static_cast<double>(naive.cycles),
                             naive.wallSeconds),
                        fast.wallSeconds,
                        rate(static_cast<double>(fast.cycles),
                             fast.wallSeconds),
                        speedup,
                        static_cast<unsigned long long>(fast.cycles));
            if (naive.cycles != fast.cycles ||
                naive.edges != fast.edges ||
                naive.iterations != fast.iterations ||
                naive.completed != fast.completed) {
                std::printf("  MISMATCH: naive %llu cycles/%llu edges/"
                            "%u iters vs ff %llu/%llu/%u\n",
                            static_cast<unsigned long long>(naive.cycles),
                            static_cast<unsigned long long>(naive.edges),
                            naive.iterations,
                            static_cast<unsigned long long>(fast.cycles),
                            static_cast<unsigned long long>(fast.edges),
                            fast.iterations);
                mismatch = true;
            }
            if (!first_cell)
                json << ",\n";
            first_cell = false;
            emitCellJson(json, w, "naive", telemetry, naive, 1.0);
            json << ",\n";
            emitCellJson(json, w, "fastforward", telemetry, fast, speedup);
        }
        std::printf("\n");
    }

    const std::uint64_t peak_rss = common::peakRssBytes();
    json << "\n  ],\n  \"memoryBoundBfsSpeedupTelemetryOff\": ";
    stats::emitJsonNumber(json, target_speedup_quiet);
    json << ",\n  \"peakRssBytes\": " << peak_rss
         << ",\n  \"equivalent\": " << (mismatch ? "false" : "true")
         << "\n}\n";
    json.close();

    bench::expectation("memory-bound BFS speedup (telemetry off)",
                       ">=3x",
                       std::to_string(target_speedup_quiet) + "x");
    bench::expectation("ff vs naive simulated statistics", "identical",
                       mismatch ? "MISMATCH" : "identical");
    if (peak_rss > 0) {
        std::printf("\npeak RSS: %.1f MiB\n",
                    static_cast<double>(peak_rss) / (1024.0 * 1024.0));
    }
    std::printf("\nwrote BENCH_simperf.json\n");
    return mismatch ? 1 : 0;
}
