/**
 * @file
 * Ablation (Table 1 / Sec. 8 claim): GPU frameworks need expensive
 * degree-sort style preprocessing to fight irregularity, while GraphDynS
 * "alleviates irregularity without preprocessing". This bench runs
 * GraphDynS on the original and on a degree-sorted LiveJournal and shows
 * the gap is marginal -- the dynamic scheduling already absorbed the
 * irregularity the reordering would remove.
 */

#include "bench_util.hh"

#include "graph/transforms.hh"
#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Ablation",
                  "GraphDynS on original vs degree-sorted graphs "
                  "(preprocessing sensitivity, LJ)");

    harness::ResultCache cache;
    const graph::Csr weighted = harness::loadDataset("LJ", true);
    const graph::Csr unweighted = harness::loadDataset("LJ", false);

    Table table({"algo", "original(GTEPS)", "degree-sorted(GTEPS)",
                 "delta(%)"});
    std::vector<double> deltas;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool w = algo::makeAlgorithm(id)->usesWeights();
        const graph::Csr &g = w ? weighted : unweighted;
        const auto plain = cache.getOrRun(
            harness::cellKey("gds", id, "LJ"),
            [&] { return harness::runGds(id, "LJ", g); });
        const auto sorted_record = cache.getOrRun(
            harness::cellKey("gds-degsorted", id, "LJ"), [&] {
                const graph::Csr sorted = graph::degreeSortReorder(g);
                return harness::runGds(id, "LJ-degsorted", sorted);
            });
        const double delta =
            (sorted_record.gteps / plain.gteps - 1.0) * 100.0;
        deltas.push_back(delta);
        table.addRow({algo::algorithmName(id),
                      Table::num(plain.gteps, 1),
                      Table::num(sorted_record.gteps, 1),
                      Table::num(delta, 1)});
    }
    table.print();

    double worst = 0.0;
    for (const double d : deltas)
        worst = std::max(worst, std::abs(d));
    std::printf("\nShape vs paper:\n");
    bench::expectation(
        "benefit of degree-sort preprocessing for GraphDynS",
        "none needed", "max |delta| = " +
                           Table::num(worst, 1) + "%");
    return 0;
}
