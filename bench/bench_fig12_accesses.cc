/**
 * @file
 * Fig. 12: total data accessed from off-chip memory during the run,
 * normalized to Gunrock (percent, lower is better). Paper: GraphDynS
 * moves 36% of Gunrock's data and 53% of Graphicionado's (no src_vid or
 * sentinel reads, exact prefetching, selective updates).
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 12",
                  "off-chip data accessed, normalized to Gunrock "
                  "(percent)");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);

    Table table({"algo", "dataset", "Graphicionado(%)", "GraphDynS(%)"});
    std::vector<double> gi_norm;
    std::vector<double> gds_norm;
    std::vector<double> gds_vs_gi;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gpu =
                bench::cellOrSkip(records, "Gunrock", a, spec.name);
            const auto *gi = bench::cellOrSkip(records, "Graphicionado",
                                               a, spec.name);
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gpu || !gi || !gds)
                continue;
            const double n_gi = gi->memoryBytes / gpu->memoryBytes * 100;
            const double n_gds = gds->memoryBytes / gpu->memoryBytes * 100;
            gi_norm.push_back(n_gi);
            gds_norm.push_back(n_gds);
            gds_vs_gi.push_back(gds->memoryBytes / gi->memoryBytes);
            table.addRow({a, spec.name, Table::num(n_gi, 1),
                          Table::num(n_gds, 1)});
        }
    }
    table.addRow({"GM", "all",
                  Table::num(harness::geometricMean(gi_norm), 1),
                  Table::num(harness::geometricMean(gds_norm), 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("GraphDynS accesses vs Gunrock (GM)", "36%",
                       Table::num(harness::geometricMean(gds_norm), 0) +
                           "%");
    bench::expectation(
        "GraphDynS accesses vs Graphicionado (GM)", "53%",
        Table::num(harness::geometricMean(gds_vs_gi) * 100.0, 0) + "%");
    return 0;
}
