/**
 * @file
 * Fig. 14c: cumulative speedup of the scheduling techniques over
 * Graphicionado on LiveJournal -- WB (workload balancing), WE (+exact
 * prefetching), WEA (+zero-stall atomics), WEAU (+update scheduling =
 * full GraphDynS). Paper geometric means: WE 1.39x, WEA 1.57x,
 * WEAU 1.8x; PR and CC gain the most from the atomic optimization.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::GdsVariant;
using harness::Table;

int
main()
{
    bench::banner("Fig. 14c",
                  "speedup breakdown over Graphicionado (LJ)");

    harness::ResultCache cache;
    const graph::Csr weighted = harness::loadDataset("LJ", true);
    const graph::Csr unweighted = harness::loadDataset("LJ", false);

    const GdsVariant variants[] = {GdsVariant::Wb, GdsVariant::We,
                                   GdsVariant::Wea, GdsVariant::Full};

    Table table({"algo", "WB", "WE", "WEA", "WEAU"});
    std::map<std::string, std::vector<double>> speedups;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool w = algo::makeAlgorithm(id)->usesWeights();
        const graph::Csr &g = w ? weighted : unweighted;
        const auto gi = cache.getOrRun(
            harness::cellKey("graphicionado", id, "LJ"), [&] {
                return harness::runGraphicionado(id, "LJ", g);
            });
        std::vector<std::string> row{algo::algorithmName(id)};
        for (const GdsVariant v : variants) {
            const std::string tag =
                v == GdsVariant::Full ? "gds"
                                      : "gds-" + harness::variantName(v);
            const auto record = cache.getOrRun(
                harness::cellKey(tag, id, "LJ"), [&] {
                    return harness::runGds(id, "LJ", g, v);
                });
            const double speedup = gi.seconds / record.seconds;
            speedups[harness::variantName(v)].push_back(speedup);
            row.push_back(Table::num(speedup));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm_row{"GM"};
    for (const GdsVariant v : variants) {
        gm_row.push_back(Table::num(
            harness::geometricMean(speedups[harness::variantName(v)])));
    }
    table.addRow(gm_row);
    table.print();

    std::printf("\nShape vs paper (GM speedup over Graphicionado):\n");
    bench::expectation(
        "WE (WB + exact prefetch)", "1.39x",
        Table::num(harness::geometricMean(speedups["WE"])) + "x");
    bench::expectation(
        "WEA (+ zero-stall atomics)", "1.57x",
        Table::num(harness::geometricMean(speedups["WEA"])) + "x");
    bench::expectation(
        "WEAU (full GraphDynS)", "1.8x",
        Table::num(harness::geometricMean(speedups["WEAU"])) + "x");
    return 0;
}
