/**
 * @file
 * Fig. 11: maximum off-chip memory storage, normalized to Gunrock
 * (percent, lower is better). Paper: GraphDynS uses 35% of Gunrock's
 * storage and 63% of Graphicionado's -- no preprocessing metadata, no
 * src_vid in edges, no vid in active records.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 11",
                  "off-chip storage normalized to Gunrock (percent)");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);

    Table table({"algo", "dataset", "Graphicionado(%)", "GraphDynS(%)"});
    std::vector<double> gi_norm;
    std::vector<double> gds_norm;
    std::vector<double> gds_vs_gi;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gpu =
                bench::cellOrSkip(records, "Gunrock", a, spec.name);
            const auto *gi = bench::cellOrSkip(records, "Graphicionado",
                                               a, spec.name);
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gpu || !gi || !gds)
                continue;
            const double n_gi =
                gi->footprintBytes / gpu->footprintBytes * 100;
            const double n_gds =
                gds->footprintBytes / gpu->footprintBytes * 100;
            gi_norm.push_back(n_gi);
            gds_norm.push_back(n_gds);
            gds_vs_gi.push_back(gds->footprintBytes / gi->footprintBytes);
            table.addRow({a, spec.name, Table::num(n_gi, 1),
                          Table::num(n_gds, 1)});
        }
    }
    table.addRow({"GM", "all",
                  Table::num(harness::geometricMean(gi_norm), 1),
                  Table::num(harness::geometricMean(gds_norm), 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("GraphDynS storage vs Gunrock (GM)", "35%",
                       Table::num(harness::geometricMean(gds_norm), 0) +
                           "%");
    bench::expectation(
        "GraphDynS storage vs Graphicionado (GM)", "63%",
        Table::num(harness::geometricMean(gds_vs_gi) * 100.0, 0) + "%");
    return 0;
}
