/**
 * @file
 * Dataset-layer benchmark: what it costs to materialize a Table 4
 * dataset (generate + COO→CSR build) and to re-load it from the binary
 * cache, heap-copied vs mmap-served. Every timing pair is also an
 * equivalence gate — the parallel build must be byte-identical to the
 * serial build, the mapped graph byte-identical to the heap graph, and a
 * functional BFS must produce bit-identical properties on both — and the
 * bench exits nonzero on any mismatch.
 *
 * Modes:
 *   (default)                 full measurement matrix, writes
 *                             BENCH_dataset.json
 *   --prepare NAME            generate + cache NAME at the current
 *                             GDS_SCALE (for a later cold-load run)
 *   --measure-load NAME       fresh-process cold load of the cached
 *                             NAME via mmap: load + full-scan wall time
 *                             and peak RSS, written to
 *                             BENCH_dataset.json;
 *                             --rss-budget-mb N exits nonzero when peak
 *                             RSS exceeds the budget
 *
 * The split into --prepare and --measure-load exists so CI can measure a
 * cold load in a process whose peak RSS was never inflated by
 * generation-time heap arrays.
 */

#include "bench_util.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "algo/reference_engine.hh"
#include "common/rss.hh"
#include "graph/loader.hh"
#include "harness/walltime.hh"
#include "stats/json.hh"

using namespace gds;

namespace
{

template <typename T>
bool
sameBytes(std::span<const T> a, std::span<const T> b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size_bytes()) == 0);
}

/** Byte-level equality of two graphs' arrays. */
bool
sameGraph(const graph::Csr &a, const graph::Csr &b)
{
    return sameBytes(a.offsetArray(), b.offsetArray()) &&
           sameBytes(a.neighborArray(), b.neighborArray()) &&
           sameBytes(a.weightArray(), b.weightArray());
}

/** Functional BFS whose result must not depend on the graph's storage. */
algo::ReferenceResult
functionalBfs(const graph::Csr &g)
{
    auto algorithm = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
    return algo::runReference(g, *algorithm, algo::defaultSource(g));
}

struct LoadCell
{
    double wallSeconds = 0.0;
    std::uint64_t heapBytes = 0;
    std::uint64_t mappedBytes = 0;
};

/** Min-of-repeats timed load through @p load. */
template <typename LoadFn>
LoadCell
timeLoad(const LoadFn &load, unsigned repeats)
{
    LoadCell best;
    for (unsigned r = 0; r < repeats; ++r) {
        double seconds = 0.0;
        {
            const harness::ScopedWallTimer timer(seconds);
            const graph::Csr g = load();
            best.heapBytes = g.heapBytes();
            best.mappedBytes = g.mappedBytes();
        }
        best.wallSeconds =
            r == 0 ? seconds : std::min(best.wallSeconds, seconds);
    }
    return best;
}

void
emitCell(std::ostream &os, bool &first, const std::string &dataset,
         const char *phase, const char *mode, double wall_seconds,
         double speedup, std::uint64_t heap_bytes,
         std::uint64_t mapped_bytes)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"dataset\":";
    stats::emitJsonString(os, dataset);
    os << ",\"phase\":";
    stats::emitJsonString(os, phase);
    os << ",\"mode\":";
    stats::emitJsonString(os, mode);
    os << ",\"wallSeconds\":";
    stats::emitJsonNumber(os, wall_seconds);
    os << ",\"speedup\":";
    stats::emitJsonNumber(os, speedup);
    os << ",\"heapBytes\":" << heap_bytes
       << ",\"mappedBytes\":" << mapped_bytes
       << ",\"peakRssBytes\":" << common::peakRssBytes() << "}";
}

int
prepare(const std::string &name)
{
    bench::banner("dataset --prepare", "generate + cache " + name);
    double seconds = 0.0;
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    {
        const harness::ScopedWallTimer timer(seconds);
        const graph::Csr g = harness::loadDataset(name, false);
        vertices = g.numVertices();
        edges = g.numEdges();
    }
    const std::string path = harness::datasetCachePath(
        name, graph::datasetScaleDivisor(), false);
    std::printf("%s: |V|=%llu |E|=%llu in %.2fs -> %s\n", name.c_str(),
                static_cast<unsigned long long>(vertices),
                static_cast<unsigned long long>(edges), seconds,
                path.c_str());
    return std::filesystem::exists(path) ? 0 : 1;
}

int
measureLoad(const std::string &name, std::uint64_t rss_budget_mb)
{
    bench::banner("dataset --measure-load",
                  "cold mmap load + full scan of " + name);
    const std::string path = harness::datasetCachePath(
        name, graph::datasetScaleDivisor(), false);
    if (!std::filesystem::exists(path)) {
        std::printf("cache '%s' missing: run --prepare %s first\n",
                    path.c_str(), name.c_str());
        return 2;
    }

    double map_seconds = 0.0;
    double scan_seconds = 0.0;
    std::uint64_t mapped_bytes = 0;
    std::uint64_t heap_bytes = 0;
    std::uint64_t edge_sum = 0;
    {
        const harness::ScopedWallTimer timer(map_seconds);
        const graph::Csr g = graph::loadBinaryMapped(path);
        mapped_bytes = g.mappedBytes();
        heap_bytes = g.heapBytes();
        {
            const harness::ScopedWallTimer scan_timer(scan_seconds);
            // Touch every page the way a simulation would: the offset
            // array per vertex, the neighbour array per edge.
            const graph::DegreeStats ds = g.degreeStats();
            for (const VertexId dst : g.neighborArray())
                edge_sum += dst;
            std::printf("degrees: min %llu max %llu mean %.2f; "
                        "neighbour checksum %llu\n",
                        static_cast<unsigned long long>(ds.minDegree),
                        static_cast<unsigned long long>(ds.maxDegree),
                        ds.meanDegree,
                        static_cast<unsigned long long>(edge_sum));
        }
    }
    const std::uint64_t peak_rss = common::peakRssBytes();
    const double peak_mb =
        static_cast<double>(peak_rss) / (1024.0 * 1024.0);
    std::printf("map %.4fs  scan %.3fs  mapped %.1f MiB  heap %.1f MiB  "
                "peak RSS %.1f MiB\n",
                map_seconds, scan_seconds,
                static_cast<double>(mapped_bytes) / (1024.0 * 1024.0),
                static_cast<double>(heap_bytes) / (1024.0 * 1024.0),
                peak_mb);

    std::ofstream json("BENCH_dataset.json");
    json << "{\n  \"bench\": \"dataset\",\n  \"mode\": \"measure-load\","
         << "\n  \"dataset\": ";
    stats::emitJsonString(json, name);
    json << ",\n  \"scale\": " << graph::datasetScaleDivisor()
         << ",\n  \"mapSeconds\": ";
    stats::emitJsonNumber(json, map_seconds);
    json << ",\n  \"scanSeconds\": ";
    stats::emitJsonNumber(json, scan_seconds);
    json << ",\n  \"mappedBytes\": " << mapped_bytes
         << ",\n  \"heapBytes\": " << heap_bytes
         << ",\n  \"peakRssBytes\": " << peak_rss << "\n}\n";
    json.close();
    std::printf("wrote BENCH_dataset.json\n");

    if (rss_budget_mb > 0) {
        const bool ok =
            peak_rss <= rss_budget_mb * 1024ULL * 1024ULL;
        bench::expectation("cold-load peak RSS",
                           "<= " + std::to_string(rss_budget_mb) + " MiB",
                           std::to_string(peak_mb) + " MiB" +
                               (ok ? "" : " OVER BUDGET"));
        if (!ok)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned repeats = 5;
    std::string prepare_name;
    std::string measure_name;
    std::uint64_t rss_budget_mb = 0;
    std::vector<std::string> datasets;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeats = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--dataset") == 0 &&
                   i + 1 < argc) {
            datasets.emplace_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--prepare") == 0 &&
                   i + 1 < argc) {
            prepare_name = argv[++i];
        } else if (std::strcmp(argv[i], "--measure-load") == 0 &&
                   i + 1 < argc) {
            measure_name = argv[++i];
        } else if (std::strcmp(argv[i], "--rss-budget-mb") == 0 &&
                   i + 1 < argc) {
            rss_budget_mb = static_cast<std::uint64_t>(
                std::max(0, std::atoi(argv[++i])));
        } else {
            std::printf(
                "usage: %s [--quick] [--repeat N] [--dataset NAME]...\n"
                "       %s --prepare NAME\n"
                "       %s --measure-load NAME [--rss-budget-mb N]\n",
                argv[0], argv[0], argv[0]);
            return 2;
        }
    }
    if (!prepare_name.empty())
        return prepare(prepare_name);
    if (!measure_name.empty())
        return measureLoad(measure_name, rss_budget_mb);

    bench::banner("dataset",
                  quick ? "dataset load/build performance (quick smoke)"
                        : "dataset load/build performance");
    if (datasets.empty()) {
        datasets = quick ? std::vector<std::string>{"FR"}
                         : std::vector<std::string>{"FR", "RM22"};
    }
    const unsigned parallel_jobs = harness::jobCount();
    std::printf("parallel jobs: %u (hardware threads: %u)\n\n",
                parallel_jobs, std::thread::hardware_concurrency());

    std::ofstream json("BENCH_dataset.json");
    json << "{\n  \"bench\": \"dataset\",\n  \"mode\": \"full\",\n"
         << "  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"scale\": " << graph::datasetScaleDivisor()
         << ",\n  \"parallelJobs\": " << parallel_jobs
         << ",\n  \"cells\": [\n";

    bool mismatch = false;
    bool first_cell = true;
    double last_build_speedup = 0.0;
    double last_load_speedup = 0.0;
    const unsigned scale = graph::datasetScaleDivisor();
    for (const std::string &name : datasets) {
        const graph::DatasetSpec &spec = graph::datasetByName(name);

        // Generate + build, serial vs parallel; must be byte-identical.
        double serial_seconds = 0.0;
        double parallel_seconds = 0.0;
        graph::Csr serial_graph;
        graph::Csr parallel_graph;
        {
            const harness::ScopedWallTimer timer(serial_seconds);
            serial_graph = graph::makeDataset(spec, scale, false, 1);
        }
        {
            const harness::ScopedWallTimer timer(parallel_seconds);
            parallel_graph =
                graph::makeDataset(spec, scale, false, parallel_jobs);
        }
        const double build_speedup = parallel_seconds > 0.0
                                         ? serial_seconds /
                                               parallel_seconds
                                         : 0.0;
        last_build_speedup = build_speedup;
        const bool build_identical =
            sameGraph(serial_graph, parallel_graph);
        if (!build_identical) {
            std::printf("  MISMATCH: parallel build of %s differs from "
                        "serial\n",
                        name.c_str());
            mismatch = true;
        }
        std::printf("%s  (|V|=%llu |E|=%llu)\n", name.c_str(),
                    static_cast<unsigned long long>(
                        serial_graph.numVertices()),
                    static_cast<unsigned long long>(
                        serial_graph.numEdges()));
        std::printf("  generate+build  serial %7.3fs | %u jobs %7.3fs | "
                    "speedup %5.2fx | %s\n",
                    serial_seconds, parallel_jobs, parallel_seconds,
                    build_speedup,
                    build_identical ? "identical" : "MISMATCH");
        emitCell(json, first_cell, name, "generate", "serial",
                 serial_seconds, 1.0, serial_graph.heapBytes(), 0);
        emitCell(json, first_cell, name, "generate", "parallel",
                 parallel_seconds, build_speedup,
                 parallel_graph.heapBytes(), 0);
        parallel_graph = graph::Csr();

        // Cache write, then cache-hit loads: heap copy vs zero-copy map.
        const std::string path = harness::datasetCachePath(name, scale,
                                                           false);
        double save_seconds = 0.0;
        {
            const harness::ScopedWallTimer timer(save_seconds);
            graph::saveBinaryAtomic(serial_graph, path);
        }
        emitCell(json, first_cell, name, "save", "atomic", save_seconds,
                 1.0, 0, 0);

        const LoadCell heap_load = timeLoad(
            [&path] { return graph::loadBinary(path); }, repeats);
        const LoadCell mmap_load = timeLoad(
            [&path] { return graph::loadBinaryMapped(path); }, repeats);
        const double load_speedup =
            mmap_load.wallSeconds > 0.0
                ? heap_load.wallSeconds / mmap_load.wallSeconds
                : 0.0;
        last_load_speedup = load_speedup;
        std::printf("  cache-hit load  heap   %7.4fs | mmap   %7.4fs | "
                    "speedup %5.2fx\n",
                    heap_load.wallSeconds, mmap_load.wallSeconds,
                    load_speedup);
        emitCell(json, first_cell, name, "load", "heap",
                 heap_load.wallSeconds, 1.0, heap_load.heapBytes,
                 heap_load.mappedBytes);
        emitCell(json, first_cell, name, "load", "mmap",
                 mmap_load.wallSeconds, load_speedup,
                 mmap_load.heapBytes, mmap_load.mappedBytes);

        // Storage equivalence: the mapped graph must be byte-identical
        // to the heap graph, and a functional BFS bit-identical on both.
        const graph::Csr heap_graph = graph::loadBinary(path);
        const graph::Csr mmap_graph = graph::loadBinaryMapped(path);
        const bool arrays_identical = sameGraph(heap_graph, mmap_graph);
        const algo::ReferenceResult heap_bfs = functionalBfs(heap_graph);
        const algo::ReferenceResult mmap_bfs = functionalBfs(mmap_graph);
        const bool sim_identical =
            heap_bfs.iterations == mmap_bfs.iterations &&
            heap_bfs.properties.size() == mmap_bfs.properties.size() &&
            (heap_bfs.properties.empty() ||
             std::memcmp(heap_bfs.properties.data(),
                         mmap_bfs.properties.data(),
                         heap_bfs.properties.size() *
                             sizeof(PropValue)) == 0);
        if (!arrays_identical || !sim_identical) {
            std::printf("  MISMATCH: heap vs mmap %s differ (arrays %s, "
                        "bfs %s)\n",
                        name.c_str(),
                        arrays_identical ? "identical" : "DIFFER",
                        sim_identical ? "identical" : "DIFFER");
            mismatch = true;
        } else {
            std::printf("  heap vs mmap    arrays identical | functional "
                        "BFS bit-identical (%u iterations)\n",
                        heap_bfs.iterations);
        }
        std::printf("\n");
    }

    json << "\n  ],\n  \"equivalent\": " << (mismatch ? "false" : "true")
         << ",\n  \"peakRssBytes\": " << common::peakRssBytes()
         << "\n}\n";
    json.close();

    bench::expectation("parallel vs serial build",
                       "byte-identical",
                       mismatch ? "MISMATCH" : "identical");
    bench::expectation(
        "build speedup at " + std::to_string(parallel_jobs) + " jobs",
        ">=2x on >=8 hardware threads",
        std::to_string(last_build_speedup) + "x");
    bench::expectation("mmap vs heap cache-hit load", ">=5x",
                       std::to_string(last_load_speedup) + "x");
    std::printf("\nwrote BENCH_dataset.json\n");
    return mismatch ? 1 : 0;
}
