/**
 * @file
 * Fig. 9: energy consumption (including HBM) normalized to Gunrock, in
 * percent -- lower is better. Paper aggregates: GraphDynS consumes 8.6%
 * of Gunrock's energy (11.6x less) and ~45% less than Graphicionado.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 9",
                  "energy normalized to Gunrock, percent (lower is "
                  "better)");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);

    Table table({"algo", "dataset", "Graphicionado(%)", "GraphDynS(%)"});
    std::vector<double> gi_norm;
    std::vector<double> gds_norm;
    std::vector<double> gds_vs_gi;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gpu =
                bench::cellOrSkip(records, "Gunrock", a, spec.name);
            const auto *gi = bench::cellOrSkip(records, "Graphicionado",
                                               a, spec.name);
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gpu || !gi || !gds)
                continue;
            const double n_gi = gi->energyJoules / gpu->energyJoules * 100;
            const double n_gds =
                gds->energyJoules / gpu->energyJoules * 100;
            gi_norm.push_back(n_gi);
            gds_norm.push_back(n_gds);
            gds_vs_gi.push_back(gds->energyJoules / gi->energyJoules);
            table.addRow({a, spec.name, Table::num(n_gi, 1),
                          Table::num(n_gds, 1)});
        }
    }
    const double gm_gi = harness::geometricMean(gi_norm);
    const double gm_gds = harness::geometricMean(gds_norm);
    table.addRow({"GM", "all", Table::num(gm_gi, 1),
                  Table::num(gm_gds, 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("GraphDynS energy vs Gunrock (GM)",
                       "8.6% (11.6x less)", Table::num(gm_gds, 1) + "%");
    bench::expectation(
        "GraphDynS energy vs Graphicionado (GM)", "-45%",
        Table::num((harness::geometricMean(gds_vs_gi) - 1.0) * 100.0, 0) +
            "%");
    return 0;
}
