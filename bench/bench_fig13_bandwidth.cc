/**
 * @file
 * Fig. 13: average memory bandwidth utilization (percent of each
 * system's peak). Paper: GraphDynS 56% on average, Gunrock only 31%
 * (random accesses), Graphicionado similar to GraphDynS (its extra
 * sequential src_vid reads raise row locality but waste bytes).
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Fig. 13", "memory bandwidth utilization (percent)");

    harness::ResultCache cache;
    const auto records = bench::sharedMatrix(cache);

    Table table({"algo", "dataset", "Gunrock(%)", "Graphicionado(%)",
                 "GraphDynS(%)"});
    std::vector<double> gpu_u;
    std::vector<double> gi_u;
    std::vector<double> gds_u;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const std::string a = algo::algorithmName(id);
        for (const auto &spec : graph::realWorldDatasets()) {
            const auto *gpu =
                bench::cellOrSkip(records, "Gunrock", a, spec.name);
            const auto *gi = bench::cellOrSkip(records, "Graphicionado",
                                               a, spec.name);
            const auto *gds =
                bench::cellOrSkip(records, "GraphDynS", a, spec.name);
            if (!gpu || !gi || !gds)
                continue;
            gpu_u.push_back(gpu->bandwidthUtilization * 100);
            gi_u.push_back(gi->bandwidthUtilization * 100);
            gds_u.push_back(gds->bandwidthUtilization * 100);
            table.addRow({a, spec.name,
                          Table::num(gpu->bandwidthUtilization * 100, 1),
                          Table::num(gi->bandwidthUtilization * 100, 1),
                          Table::num(gds->bandwidthUtilization * 100, 1)});
        }
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (const double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    table.addRow({"MEAN", "all", Table::num(mean(gpu_u), 1),
                  Table::num(mean(gi_u), 1), Table::num(mean(gds_u), 1)});
    table.print();

    std::printf("\nShape vs paper:\n");
    bench::expectation("GraphDynS mean utilization", "56%",
                       Table::num(mean(gds_u), 0) + "%");
    bench::expectation("Gunrock mean utilization", "31%",
                       Table::num(mean(gpu_u), 0) + "%");
    return 0;
}
