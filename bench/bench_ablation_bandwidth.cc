/**
 * @file
 * Ablation (beyond the paper's figures, motivated by its abstract):
 * GraphDynS "achieves 4.4x speedup ... with half the memory bandwidth"
 * of the GPU. This bench sweeps the HBM bandwidth (number of channels)
 * to show where each algorithm transitions from bandwidth-bound to
 * latency/compute-bound -- the design-space argument behind choosing
 * 512 GB/s.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"

using namespace gds;
using harness::Table;

int
main()
{
    bench::banner("Ablation", "GraphDynS performance vs HBM bandwidth "
                              "(LJ)");

    harness::ResultCache cache;
    const graph::Csr weighted = harness::loadDataset("LJ", true);
    const graph::Csr unweighted = harness::loadDataset("LJ", false);

    const unsigned channel_counts[] = {8, 16, 32, 64}; // 128..1024 GB/s
    Table table({"algo", "128GB/s", "256GB/s", "512GB/s", "1024GB/s"});
    for (const algo::AlgorithmId id :
         {algo::AlgorithmId::Bfs, algo::AlgorithmId::Sssp,
          algo::AlgorithmId::Pr}) {
        const bool w = algo::makeAlgorithm(id)->usesWeights();
        const graph::Csr &g = w ? weighted : unweighted;
        std::vector<std::string> row{algo::algorithmName(id)};
        double base_seconds = 0.0;
        for (const unsigned channels : channel_counts) {
            const std::string tag =
                "gds-bw" + std::to_string(channels * 16);
            const auto record = cache.getOrRun(
                harness::cellKey(tag, id, "LJ"), [&] {
                    core::GdsConfig cfg;
                    cfg.hbm.numChannels = channels;
                    return harness::runGds(id, "LJ", g,
                                           harness::GdsVariant::Full,
                                           &cfg);
                });
            if (channels == 32)
                base_seconds = record.seconds;
            row.push_back(Table::num(record.gteps, 1) + " GTEPS");
            (void)base_seconds;
        }
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nreading: PR (streaming, high throughput) scales with "
                "bandwidth until the 128-edge/cycle compute ceiling;\n"
                "BFS/SSSP are traversal-latency bound and gain little "
                "beyond 512 GB/s -- the paper's operating point.\n");
    return 0;
}
