# Empty dependencies file for bench_ablation_preprocessing.
# This may be replaced when dependencies are built.
