# Empty compiler generated dependencies file for bench_fig14a_sched_reduction.
# This may be replaced when dependencies are built.
