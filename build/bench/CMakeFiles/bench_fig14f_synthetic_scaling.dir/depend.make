# Empty dependencies file for bench_fig14f_synthetic_scaling.
# This may be replaced when dependencies are built.
