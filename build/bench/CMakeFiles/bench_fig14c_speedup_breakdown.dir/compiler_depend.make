# Empty compiler generated dependencies file for bench_fig14c_speedup_breakdown.
# This may be replaced when dependencies are built.
