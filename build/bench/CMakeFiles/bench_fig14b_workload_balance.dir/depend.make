# Empty dependencies file for bench_fig14b_workload_balance.
# This may be replaced when dependencies are built.
