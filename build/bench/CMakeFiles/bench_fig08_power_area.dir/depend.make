# Empty dependencies file for bench_fig08_power_area.
# This may be replaced when dependencies are built.
