# Empty compiler generated dependencies file for bench_fig14e_ue_scaling.
# This may be replaced when dependencies are built.
