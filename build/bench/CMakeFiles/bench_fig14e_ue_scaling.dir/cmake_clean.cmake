file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14e_ue_scaling.dir/bench_fig14e_ue_scaling.cc.o"
  "CMakeFiles/bench_fig14e_ue_scaling.dir/bench_fig14e_ue_scaling.cc.o.d"
  "bench_fig14e_ue_scaling"
  "bench_fig14e_ue_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14e_ue_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
