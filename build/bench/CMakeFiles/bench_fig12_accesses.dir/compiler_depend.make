# Empty compiler generated dependencies file for bench_fig12_accesses.
# This may be replaced when dependencies are built.
