# Empty dependencies file for bench_fig14d_access_reduction.
# This may be replaced when dependencies are built.
