file(REMOVE_RECURSE
  "CMakeFiles/route_planning.dir/route_planning.cpp.o"
  "CMakeFiles/route_planning.dir/route_planning.cpp.o.d"
  "route_planning"
  "route_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
