file(REMOVE_RECURSE
  "CMakeFiles/gds_sim_cli.dir/gds_sim.cpp.o"
  "CMakeFiles/gds_sim_cli.dir/gds_sim.cpp.o.d"
  "gds_sim"
  "gds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
