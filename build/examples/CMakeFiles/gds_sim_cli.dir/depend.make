# Empty dependencies file for gds_sim_cli.
# This may be replaced when dependencies are built.
