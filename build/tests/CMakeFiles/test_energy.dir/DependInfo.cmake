
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/test_energy.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/test_energy.dir/test_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/gds_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/gds_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
