
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hbm.cc" "tests/CMakeFiles/test_hbm.dir/test_hbm.cc.o" "gcc" "tests/CMakeFiles/test_hbm.dir/test_hbm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
