file(REMOVE_RECURSE
  "CMakeFiles/test_reference_engine.dir/test_reference_engine.cc.o"
  "CMakeFiles/test_reference_engine.dir/test_reference_engine.cc.o.d"
  "test_reference_engine"
  "test_reference_engine.pdb"
  "test_reference_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
