# Empty compiler generated dependencies file for test_reference_engine.
# This may be replaced when dependencies are built.
