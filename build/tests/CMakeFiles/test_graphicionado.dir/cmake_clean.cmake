file(REMOVE_RECURSE
  "CMakeFiles/test_graphicionado.dir/test_graphicionado.cc.o"
  "CMakeFiles/test_graphicionado.dir/test_graphicionado.cc.o.d"
  "test_graphicionado"
  "test_graphicionado.pdb"
  "test_graphicionado[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphicionado.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
