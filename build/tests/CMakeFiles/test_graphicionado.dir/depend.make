# Empty dependencies file for test_graphicionado.
# This may be replaced when dependencies are built.
