file(REMOVE_RECURSE
  "CMakeFiles/test_pull_engine.dir/test_pull_engine.cc.o"
  "CMakeFiles/test_pull_engine.dir/test_pull_engine.cc.o.d"
  "test_pull_engine"
  "test_pull_engine.pdb"
  "test_pull_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pull_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
