# Empty compiler generated dependencies file for test_pull_engine.
# This may be replaced when dependencies are built.
