file(REMOVE_RECURSE
  "CMakeFiles/test_gds_accel.dir/test_gds_accel.cc.o"
  "CMakeFiles/test_gds_accel.dir/test_gds_accel.cc.o.d"
  "test_gds_accel"
  "test_gds_accel.pdb"
  "test_gds_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gds_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
