# Empty dependencies file for test_gds_accel.
# This may be replaced when dependencies are built.
