file(REMOVE_RECURSE
  "CMakeFiles/test_memmap.dir/test_memmap.cc.o"
  "CMakeFiles/test_memmap.dir/test_memmap.cc.o.d"
  "test_memmap"
  "test_memmap.pdb"
  "test_memmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
