# Empty dependencies file for test_memmap.
# This may be replaced when dependencies are built.
