file(REMOVE_RECURSE
  "CMakeFiles/test_config_sweep.dir/test_config_sweep.cc.o"
  "CMakeFiles/test_config_sweep.dir/test_config_sweep.cc.o.d"
  "test_config_sweep"
  "test_config_sweep.pdb"
  "test_config_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
