file(REMOVE_RECURSE
  "CMakeFiles/test_gunrock_sim.dir/test_gunrock_sim.cc.o"
  "CMakeFiles/test_gunrock_sim.dir/test_gunrock_sim.cc.o.d"
  "test_gunrock_sim"
  "test_gunrock_sim.pdb"
  "test_gunrock_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gunrock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
