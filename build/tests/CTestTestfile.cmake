# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_datasets[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_reference_engine[1]_include.cmake")
include("/root/repo/build/tests/test_hbm[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_gds_accel[1]_include.cmake")
include("/root/repo/build/tests/test_graphicionado[1]_include.cmake")
include("/root/repo/build/tests/test_gunrock_sim[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_memmap[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_stats_json[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_debug[1]_include.cmake")
include("/root/repo/build/tests/test_config_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_pull_engine[1]_include.cmake")
