# Empty dependencies file for gds_harness.
# This may be replaced when dependencies are built.
