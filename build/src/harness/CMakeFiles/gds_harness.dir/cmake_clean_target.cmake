file(REMOVE_RECURSE
  "libgds_harness.a"
)
