file(REMOVE_RECURSE
  "CMakeFiles/gds_harness.dir/experiment.cc.o"
  "CMakeFiles/gds_harness.dir/experiment.cc.o.d"
  "libgds_harness.a"
  "libgds_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
