file(REMOVE_RECURSE
  "libgds_mem.a"
)
