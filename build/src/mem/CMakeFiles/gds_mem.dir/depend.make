# Empty dependencies file for gds_mem.
# This may be replaced when dependencies are built.
