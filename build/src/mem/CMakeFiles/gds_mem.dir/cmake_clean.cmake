file(REMOVE_RECURSE
  "CMakeFiles/gds_mem.dir/hbm.cc.o"
  "CMakeFiles/gds_mem.dir/hbm.cc.o.d"
  "libgds_mem.a"
  "libgds_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
