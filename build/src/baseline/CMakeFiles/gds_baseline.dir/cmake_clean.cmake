file(REMOVE_RECURSE
  "CMakeFiles/gds_baseline.dir/graphicionado.cc.o"
  "CMakeFiles/gds_baseline.dir/graphicionado.cc.o.d"
  "CMakeFiles/gds_baseline.dir/gunrock_sim.cc.o"
  "CMakeFiles/gds_baseline.dir/gunrock_sim.cc.o.d"
  "libgds_baseline.a"
  "libgds_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
