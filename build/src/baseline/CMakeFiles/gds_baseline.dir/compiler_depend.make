# Empty compiler generated dependencies file for gds_baseline.
# This may be replaced when dependencies are built.
