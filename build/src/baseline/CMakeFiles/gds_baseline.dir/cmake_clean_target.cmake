file(REMOVE_RECURSE
  "libgds_baseline.a"
)
