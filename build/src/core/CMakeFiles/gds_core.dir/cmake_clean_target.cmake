file(REMOVE_RECURSE
  "libgds_core.a"
)
