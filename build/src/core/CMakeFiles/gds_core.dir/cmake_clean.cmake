file(REMOVE_RECURSE
  "CMakeFiles/gds_core.dir/gds_accel.cc.o"
  "CMakeFiles/gds_core.dir/gds_accel.cc.o.d"
  "CMakeFiles/gds_core.dir/gds_apply.cc.o"
  "CMakeFiles/gds_core.dir/gds_apply.cc.o.d"
  "CMakeFiles/gds_core.dir/gds_scatter.cc.o"
  "CMakeFiles/gds_core.dir/gds_scatter.cc.o.d"
  "CMakeFiles/gds_core.dir/memmap.cc.o"
  "CMakeFiles/gds_core.dir/memmap.cc.o.d"
  "libgds_core.a"
  "libgds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
