# Empty compiler generated dependencies file for gds_core.
# This may be replaced when dependencies are built.
