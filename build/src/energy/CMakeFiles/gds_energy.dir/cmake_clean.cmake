file(REMOVE_RECURSE
  "CMakeFiles/gds_energy.dir/energy_model.cc.o"
  "CMakeFiles/gds_energy.dir/energy_model.cc.o.d"
  "libgds_energy.a"
  "libgds_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
