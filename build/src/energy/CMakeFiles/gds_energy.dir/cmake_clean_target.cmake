file(REMOVE_RECURSE
  "libgds_energy.a"
)
