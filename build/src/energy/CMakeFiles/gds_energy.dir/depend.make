# Empty dependencies file for gds_energy.
# This may be replaced when dependencies are built.
