# Empty dependencies file for gds_graph.
# This may be replaced when dependencies are built.
