file(REMOVE_RECURSE
  "CMakeFiles/gds_graph.dir/builder.cc.o"
  "CMakeFiles/gds_graph.dir/builder.cc.o.d"
  "CMakeFiles/gds_graph.dir/csr.cc.o"
  "CMakeFiles/gds_graph.dir/csr.cc.o.d"
  "CMakeFiles/gds_graph.dir/datasets.cc.o"
  "CMakeFiles/gds_graph.dir/datasets.cc.o.d"
  "CMakeFiles/gds_graph.dir/generators.cc.o"
  "CMakeFiles/gds_graph.dir/generators.cc.o.d"
  "CMakeFiles/gds_graph.dir/loader.cc.o"
  "CMakeFiles/gds_graph.dir/loader.cc.o.d"
  "CMakeFiles/gds_graph.dir/slicer.cc.o"
  "CMakeFiles/gds_graph.dir/slicer.cc.o.d"
  "CMakeFiles/gds_graph.dir/transforms.cc.o"
  "CMakeFiles/gds_graph.dir/transforms.cc.o.d"
  "libgds_graph.a"
  "libgds_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
