file(REMOVE_RECURSE
  "libgds_graph.a"
)
