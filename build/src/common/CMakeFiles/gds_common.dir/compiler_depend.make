# Empty compiler generated dependencies file for gds_common.
# This may be replaced when dependencies are built.
