file(REMOVE_RECURSE
  "CMakeFiles/gds_common.dir/debug.cc.o"
  "CMakeFiles/gds_common.dir/debug.cc.o.d"
  "CMakeFiles/gds_common.dir/logging.cc.o"
  "CMakeFiles/gds_common.dir/logging.cc.o.d"
  "libgds_common.a"
  "libgds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
