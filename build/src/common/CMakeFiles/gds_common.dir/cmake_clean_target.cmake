file(REMOVE_RECURSE
  "libgds_common.a"
)
