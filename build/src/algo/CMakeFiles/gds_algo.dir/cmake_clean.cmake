file(REMOVE_RECURSE
  "CMakeFiles/gds_algo.dir/algorithms.cc.o"
  "CMakeFiles/gds_algo.dir/algorithms.cc.o.d"
  "CMakeFiles/gds_algo.dir/pull_engine.cc.o"
  "CMakeFiles/gds_algo.dir/pull_engine.cc.o.d"
  "CMakeFiles/gds_algo.dir/reference_engine.cc.o"
  "CMakeFiles/gds_algo.dir/reference_engine.cc.o.d"
  "CMakeFiles/gds_algo.dir/validate.cc.o"
  "CMakeFiles/gds_algo.dir/validate.cc.o.d"
  "libgds_algo.a"
  "libgds_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
