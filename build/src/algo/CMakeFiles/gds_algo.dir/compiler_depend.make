# Empty compiler generated dependencies file for gds_algo.
# This may be replaced when dependencies are built.
