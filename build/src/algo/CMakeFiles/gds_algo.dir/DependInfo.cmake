
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/algorithms.cc" "src/algo/CMakeFiles/gds_algo.dir/algorithms.cc.o" "gcc" "src/algo/CMakeFiles/gds_algo.dir/algorithms.cc.o.d"
  "/root/repo/src/algo/pull_engine.cc" "src/algo/CMakeFiles/gds_algo.dir/pull_engine.cc.o" "gcc" "src/algo/CMakeFiles/gds_algo.dir/pull_engine.cc.o.d"
  "/root/repo/src/algo/reference_engine.cc" "src/algo/CMakeFiles/gds_algo.dir/reference_engine.cc.o" "gcc" "src/algo/CMakeFiles/gds_algo.dir/reference_engine.cc.o.d"
  "/root/repo/src/algo/validate.cc" "src/algo/CMakeFiles/gds_algo.dir/validate.cc.o" "gcc" "src/algo/CMakeFiles/gds_algo.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gds_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
