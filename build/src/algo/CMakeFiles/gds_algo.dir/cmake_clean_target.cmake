file(REMOVE_RECURSE
  "libgds_algo.a"
)
