file(REMOVE_RECURSE
  "CMakeFiles/gds_stats.dir/json.cc.o"
  "CMakeFiles/gds_stats.dir/json.cc.o.d"
  "CMakeFiles/gds_stats.dir/stats.cc.o"
  "CMakeFiles/gds_stats.dir/stats.cc.o.d"
  "libgds_stats.a"
  "libgds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
