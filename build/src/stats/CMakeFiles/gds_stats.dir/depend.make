# Empty dependencies file for gds_stats.
# This may be replaced when dependencies are built.
