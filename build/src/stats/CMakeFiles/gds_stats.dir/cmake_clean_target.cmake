file(REMOVE_RECURSE
  "libgds_stats.a"
)
