file(REMOVE_RECURSE
  "libgds_sim.a"
)
