# Empty dependencies file for gds_sim.
# This may be replaced when dependencies are built.
