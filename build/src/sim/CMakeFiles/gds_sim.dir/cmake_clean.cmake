file(REMOVE_RECURSE
  "CMakeFiles/gds_sim.dir/component.cc.o"
  "CMakeFiles/gds_sim.dir/component.cc.o.d"
  "libgds_sim.a"
  "libgds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
