/**
 * @file
 * gds_cli: command-line client for the gds_simd simulation daemon.
 * Builds one JSON-line request, sends it over the daemon's Unix-domain
 * socket and prints the JSON response line to stdout. Exit status 0 iff
 * the daemon answered {"ok":true,...} (so shell scripts can branch on
 * it without a JSON parser).
 *
 *   gds_cli [--socket PATH] submit --algo bfs --dataset FR
 *           [--system gds|graphicionado|gunrock] [--source VID]
 *           [--iters N] [--cycle-budget N] [--wall-budget SECONDS]
 *           [--progress-interval CYCLES]
 *   gds_cli [--socket PATH] poll JOB
 *   gds_cli [--socket PATH] result JOB
 *   gds_cli [--socket PATH] wait JOB [--timeout SECONDS]
 *   gds_cli [--socket PATH] watch JOB [--timeout SECONDS]
 *   gds_cli [--socket PATH] statsz
 *   gds_cli [--socket PATH] metricsz
 *   gds_cli [--socket PATH] shutdown
 *
 * wait polls the daemon until the job leaves the queue (done or failed)
 * and prints its final "result" response; --timeout (default 300 s)
 * bounds the polling.
 *
 * watch subscribes to the job's live progress stream and prints one
 * JSON event per line ({"event":"start"|"progress"|"done",...}) until
 * the terminal "done" event; exit status follows the job's final state.
 * metricsz prints the daemon's Prometheus text exposition verbatim.
 *
 * Numeric flags go through the same checked parser as gds_sim's flags
 * and the daemon's own request fields: trailing garbage, signs and
 * overflow are rejected with a message + usage, never an uncaught
 * exception.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "common/jsonio.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "common/socket.hh"

using namespace gds;

namespace
{

[[noreturn]] void
usage()
{
    detail::emit(
        "",
        "usage: gds_cli [--socket PATH] COMMAND ...\n"
        "  submit --algo bfs|sssp|cc|sswp|pr --dataset NAME\n"
        "         [--system gds|graphicionado|gunrock] [--source VID]\n"
        "         [--iters N] [--cycle-budget N] [--wall-budget SEC]\n"
        "         [--progress-interval CYCLES]\n"
        "  poll JOB | result JOB | wait JOB [--timeout SEC]\n"
        "  watch JOB [--timeout SEC]\n"
        "  statsz | metricsz | shutdown");
    std::exit(1);
}

/** One request/response round trip on a fresh connection. */
Result<std::string>
roundTrip(const std::string &socket_path, const std::string &request)
{
    auto chan = common::connectUnix(socket_path);
    if (!chan.ok())
        return chan.status();
    if (Status s = chan.value().writeLine(request); !s.ok())
        return s;
    std::string response;
    if (Status s = chan.value().readLine(response, 30'000); !s.ok())
        return s;
    return response;
}

/** True iff the response line says {"ok":true,...}. */
bool
responseOk(const std::string &response)
{
    auto parsed = common::parseJson(response);
    if (!parsed.ok() || !parsed.value().isObject())
        return false;
    const common::JsonValue *ok = parsed.value().find("ok");
    return ok && ok->isBool() && ok->asBool();
}

/** "state" field of a response line ("" when absent). */
std::string
responseState(const std::string &response)
{
    auto parsed = common::parseJson(response);
    if (!parsed.ok() || !parsed.value().isObject())
        return "";
    const common::JsonValue *state = parsed.value().find("state");
    return state && state->isString() ? state->asString() : "";
}

struct Cli
{
    std::string socketPath = "gds_simd.sock";
    std::string command;
    std::string job;
    // Submit fields. Only numeric shape is validated client-side; the
    // daemon re-validates names and ranges and answers with a typed
    // error line.
    std::string algo;
    std::string dataset;
    std::string system;
    std::optional<std::uint64_t> source;
    std::optional<std::uint64_t> iters;
    std::optional<std::uint64_t> cycleBudget;
    std::optional<double> wallBudget;
    std::optional<std::uint64_t> progressInterval;
    double waitTimeoutSeconds = 300.0;
};

Cli
parseArgs(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::optional<std::string> inline_value;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
            }
        }
        auto need_value = [&]() -> std::string {
            if (inline_value)
                return *inline_value;
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        auto need_u64 = [&]() {
            return common::requireU64(arg, need_value());
        };
        if (arg == "--socket")
            cli.socketPath = need_value();
        else if (arg == "--algo")
            cli.algo = need_value();
        else if (arg == "--dataset")
            cli.dataset = need_value();
        else if (arg == "--system")
            cli.system = need_value();
        else if (arg == "--source")
            cli.source = need_u64();
        else if (arg == "--iters")
            cli.iters = need_u64();
        else if (arg == "--cycle-budget")
            cli.cycleBudget = need_u64();
        else if (arg == "--wall-budget")
            cli.wallBudget = common::requireF64(arg, need_value());
        else if (arg == "--progress-interval")
            cli.progressInterval = need_u64();
        else if (arg == "--timeout")
            cli.waitTimeoutSeconds = common::requireF64(arg, need_value());
        else if (arg.rfind("--", 0) == 0)
            usage();
        else if (cli.command.empty())
            cli.command = arg;
        else if (cli.job.empty())
            cli.job = arg;
        else
            usage();
    }
    if (cli.command.empty())
        usage();
    return cli;
}

std::string
jobRequest(const std::string &op, const std::string &job)
{
    std::string req = "{\"op\":";
    req += common::jsonQuote(op);
    req += ",\"job\":";
    req += common::jsonQuote(job);
    req += '}';
    return req;
}

std::string
buildRequest(const Cli &cli)
{
    if (cli.command == "submit") {
        if (cli.algo.empty() || cli.dataset.empty())
            fatal("submit needs --algo and --dataset");
        std::string req = "{\"op\":\"submit\",\"algorithm\":";
        req += common::jsonQuote(cli.algo);
        req += ",\"dataset\":";
        req += common::jsonQuote(cli.dataset);
        if (!cli.system.empty()) {
            req += ",\"system\":";
            req += common::jsonQuote(cli.system);
        }
        if (cli.source) {
            req += ",\"source\":";
            req += std::to_string(*cli.source);
        }
        if (cli.iters) {
            req += ",\"iterations\":";
            req += std::to_string(*cli.iters);
        }
        if (cli.cycleBudget) {
            req += ",\"cycle_budget\":";
            req += std::to_string(*cli.cycleBudget);
        }
        if (cli.wallBudget) {
            req += ",\"wall_budget_seconds\":";
            req += std::to_string(*cli.wallBudget);
        }
        if (cli.progressInterval) {
            req += ",\"progress_interval\":";
            req += std::to_string(*cli.progressInterval);
        }
        req += '}';
        return req;
    }
    if (cli.command == "poll" || cli.command == "result") {
        if (cli.job.empty())
            usage();
        return jobRequest(cli.command, cli.job);
    }
    if (cli.command == "statsz")
        return "{\"op\":\"statsz\"}";
    if (cli.command == "metricsz")
        return "{\"op\":\"metricsz\"}";
    if (cli.command == "shutdown")
        return "{\"op\":\"shutdown\"}";
    usage();
}

int
runWait(const Cli &cli)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(cli.waitTimeoutSeconds);
    const std::string poll_req = jobRequest("poll", cli.job);
    for (;;) {
        auto response = roundTrip(cli.socketPath, poll_req);
        if (!response.ok())
            fatal("%s", response.status().toString().c_str());
        const std::string state = responseState(response.value());
        if (!responseOk(response.value())) {
            // Unknown job or daemon-side failure: surface it verbatim.
            std::printf("%s\n", response.value().c_str());
            return 1;
        }
        if (state == "done" || state == "failed") {
            auto final_response =
                roundTrip(cli.socketPath, jobRequest("result", cli.job));
            if (!final_response.ok())
                fatal("%s", final_response.status().toString().c_str());
            std::printf("%s\n", final_response.value().c_str());
            return responseOk(final_response.value()) ? 0 : 1;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            fatal("timed out waiting for %s", cli.job.c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

/** "event" field of a streamed line ("" when absent). */
std::string
eventKind(const std::string &line)
{
    auto parsed = common::parseJson(line);
    if (!parsed.ok() || !parsed.value().isObject())
        return "";
    const common::JsonValue *event = parsed.value().find("event");
    return event && event->isString() ? event->asString() : "";
}

int
runWatch(const Cli &cli)
{
    auto chan = common::connectUnix(cli.socketPath);
    if (!chan.ok())
        fatal("%s", chan.status().toString().c_str());
    if (Status s = chan.value().writeLine(jobRequest("subscribe", cli.job));
        !s.ok())
        fatal("%s", s.toString().c_str());

    // The ack line carries the job's current state; after it the daemon
    // pushes event lines until the terminal "done" event.
    std::string line;
    if (Status s = chan.value().readLine(line, 30'000); !s.ok())
        fatal("%s", s.toString().c_str());
    std::printf("%s\n", line.c_str());
    if (!responseOk(line))
        return 1;

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(cli.waitTimeoutSeconds);
    for (;;) {
        const Status s = chan.value().readLine(line, 1000);
        if (s.ok()) {
            std::printf("%s\n", line.c_str());
            std::fflush(stdout);
            if (eventKind(line) == "done")
                return responseState(line) == "done" ? 0 : 1;
            continue;
        }
        if (s.code() != ErrorCode::Timeout)
            fatal("%s", s.toString().c_str());
        if (std::chrono::steady_clock::now() >= deadline)
            fatal("timed out watching %s", cli.job.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    try {
        cli = parseArgs(argc, argv);
    } catch (const ConfigError &e) {
        warn("%s", e.what());
        usage();
    }

    if (cli.command == "wait") {
        if (cli.job.empty())
            usage();
        return runWait(cli);
    }
    if (cli.command == "watch") {
        if (cli.job.empty())
            usage();
        return runWatch(cli);
    }

    const std::string request = buildRequest(cli);
    auto response = roundTrip(cli.socketPath, request);
    if (!response.ok())
        fatal("%s", response.status().toString().c_str());

    if (cli.command == "metricsz" && responseOk(response.value())) {
        // Unwrap the exposition so `gds_cli metricsz` pipes straight
        // into promtool/grep without a JSON parser.
        auto parsed = common::parseJson(response.value());
        const common::JsonValue *metrics =
            parsed.ok() && parsed.value().isObject()
                ? parsed.value().find("metrics")
                : nullptr;
        if (metrics && metrics->isString()) {
            std::fputs(metrics->asString().c_str(), stdout);
            return 0;
        }
    }

    std::printf("%s\n", response.value().c_str());
    return responseOk(response.value()) ? 0 : 1;
}
