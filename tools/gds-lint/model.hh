/**
 * @file
 * Cross-translation-unit class model for gds-lint's semantic rules.
 *
 * The per-file rules in rules.hh are token-local: they can check that a
 * sim::Component subclass *declares* saveState()/restoreState(), but not
 * that those bodies actually cover the class's state. This model is the
 * second pass that closes that gap: it parses the token streams of every
 * scanned file together into a symbol table of Component subclasses —
 * each with its non-static data members (name, declared type, line) and
 * the bodies of its checkpoint/fast-forward hooks, whether defined
 * inline in the class or out-of-line as `Class::hook` in another file —
 * and runs the rules that need the whole picture:
 *
 *  - checkpoint-field-coverage  R8: every data member is referenced in
 *    BOTH saveState() and restoreState(), or carries an own-line
 *    `// gds-ckpt: skip(<field>) <justification>` exemption in the
 *    declaring file (config-derived geometry, per-call scratch,
 *    externally attached collaborators). Members with a stats:: type
 *    are exempt automatically: the Component base class serializes the
 *    registered stats of the group.
 *  - save-restore-symmetry      R9: the sequence of member references
 *    in saveState() and restoreState() matches in name and order, so a
 *    reordered codec fails lint instead of producing a checkpoint that
 *    checksums clean and restores garbage.
 *
 * Like the lexer, this is a heuristic parser, not a C++ front end: it
 * understands the project's house style (one class per header, members
 * declared one per statement, hook bodies either inline or defined as
 * `void Class::hook(...)` in the matching source file). Classes whose
 * hook bodies are not visible in the scanned file set are skipped —
 * rule R7 (checkpoint-hooks) already polices their existence — so
 * linting a single file stays useful while the whole-tree sweep gets
 * the full cross-TU analysis.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hh"

namespace gds::lint
{

struct Diagnostic;

/** One non-static data member of a modeled component. */
struct FieldDecl
{
    std::string name;
    std::string type;     ///< declared type, tokens joined with spaces
    std::size_t line;     ///< declaration line in the declaring file
    bool statsType;       ///< type mentions stats:: (base class covers it)
};

/** One hook body (saveState / restoreState / nextEventCycle). */
struct HookBody
{
    bool declared = false; ///< named anywhere in the class body
    bool defined = false;  ///< a brace body was found and captured
    std::string file;      ///< file holding the body (when defined)
    std::size_t line = 0;  ///< line of the body's definition
    std::vector<Token> tokens; ///< body tokens, braces excluded
};

/** One sim::Component subclass with everything the model rules need. */
struct ComponentModel
{
    std::string name;
    std::string file;     ///< file of the class definition
    std::string relPath;  ///< repo-relative path of that file
    std::size_t line = 0; ///< line of the class keyword
    std::vector<FieldDecl> fields;
    std::vector<CkptSkip> skips; ///< gds-ckpt directives of the file
    HookBody save;
    HookBody restore;
    HookBody nextEvent;
};

/** The cross-TU symbol table built from every scanned file. */
struct ClassModel
{
    std::vector<ComponentModel> components;
};

/**
 * Build the model over @p files (first pass: class definitions and
 * inline bodies; second pass: out-of-line `Class::hook` definitions
 * anywhere in the set). @p rel_paths holds the repo-relative path of
 * each file, index-aligned with @p files.
 */
ClassModel buildModel(const std::vector<LexedFile> &files,
                      const std::vector<std::string> &rel_paths);

/**
 * Run the model rules (R8 checkpoint-field-coverage, R9
 * save-restore-symmetry, plus staleness/aim checks on gds-ckpt skip
 * directives) and append diagnostics to @p out. Diagnostics carry the
 * path of the file they anchor to (field declaration for R8, restore
 * body for R9) so the caller can route them through that file's
 * suppressions.
 */
void runModelRules(const ClassModel &model, std::vector<Diagnostic> &out);

} // namespace gds::lint
