#include "lexer.hh"

#include <cctype>

namespace gds::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/** Two-character operators the rules care about (and their lookalikes,
 *  so `<=` is never mis-lexed as `<` `=`). */
constexpr const char *twoCharOps[] = {
    "::", "==", "!=", "<=", ">=", "->", "&&", "||", "<<", ">>",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

/** Parse a comment body as a gds-lint or gds-ckpt directive. Only
 *  comments that BEGIN with the tag (after whitespace / doc-comment
 *  asterisks) are directives, so prose that merely mentions the syntax
 *  is ignored. Returns true when the comment was a directive attempt. */
bool
parseDirective(std::string_view body, std::size_t line, bool own_line,
               LexedFile &out)
{
    std::size_t tag = 0;
    while (tag < body.size() &&
           (body[tag] == '*' ||
            std::isspace(static_cast<unsigned char>(body[tag]))))
        ++tag;
    const bool is_lint = body.compare(tag, 8, "gds-lint") == 0;
    const bool is_ckpt = !is_lint && body.compare(tag, 8, "gds-ckpt") == 0;
    if (!is_lint && !is_ckpt)
        return false;
    std::string_view rest = body.substr(tag + 8); // past the tag
    // Accept "gds-lint: allow(rule) why" / "gds-ckpt: skip(field) why"
    // with flexible spacing.
    std::size_t i = 0;
    while (i < rest.size() &&
           (rest[i] == ':' ||
            std::isspace(static_cast<unsigned char>(rest[i]))))
        ++i;
    const std::string_view verb = is_lint ? "allow(" : "skip(";
    if (rest.compare(i, verb.size(), verb) != 0) {
        out.badDirectives.push_back(
            {line, is_lint
                       ? "gds-lint directive must be "
                         "'gds-lint: allow(<rule>) <justification>'"
                       : "gds-ckpt directive must be "
                         "'gds-ckpt: skip(<field>) <justification>'"});
        return true;
    }
    i += verb.size();
    const std::size_t close = rest.find(')', i);
    if (close == std::string_view::npos) {
        out.badDirectives.push_back(
            {line, "unterminated " + std::string(verb) + "...) in " +
                   (is_lint ? "gds-lint" : "gds-ckpt") + " directive"});
        return true;
    }
    const std::string name = trim(rest.substr(i, close - i));
    const std::string justification = trim(rest.substr(close + 1));
    if (name.empty()) {
        out.badDirectives.push_back(
            {line, is_lint ? "allow() needs a rule name"
                           : "skip() needs a field name"});
        return true;
    }
    if (justification.empty()) {
        out.badDirectives.push_back(
            {line, (is_lint ? "suppression of '" : "checkpoint skip of '") +
                   name + "' needs a justification after " +
                   std::string(verb) + name + ")"});
        return true;
    }
    if (is_lint)
        out.suppressions.push_back({line, name, justification, own_line});
    else
        out.ckptSkips.push_back({line, name, justification});
    return true;
}

} // namespace

LexedFile
lexFile(std::string path, std::string_view content)
{
    LexedFile out;
    out.path = std::move(path);

    const std::size_t n = content.size();
    std::size_t i = 0;
    std::size_t line = 1;
    bool code_on_line = false; // any token started on the current line?

    auto push = [&](TokKind kind, std::string text, std::size_t at,
                    bool is_float = false) {
        out.tokens.push_back({kind, std::move(text), at, is_float});
        code_on_line = true;
    };

    // Scan a quoted region ('"' or '\''), honouring backslash escapes.
    // Returns the contents between the quotes, escapes unprocessed.
    auto skipQuoted = [&](char quote) {
        std::string body;
        ++i; // opening quote
        while (i < n) {
            if (content[i] == '\\' && i + 1 < n) {
                body.append(content.substr(i, 2));
                i += 2;
            } else if (content[i] == quote) {
                ++i;
                return body;
            } else {
                if (content[i] == '\n')
                    ++line;
                body += content[i];
                ++i;
            }
        }
        return body;
    };

    while (i < n) {
        const char c = content[i];
        if (c == '\n') {
            ++line;
            ++i;
            code_on_line = false;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Comments (and suppression directives).
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            const std::size_t start = i;
            while (i < n && content[i] != '\n')
                ++i;
            parseDirective(content.substr(start + 2, i - start - 2), line,
                           !code_on_line, out);
            continue;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            const std::size_t start_line = line;
            const bool own = !code_on_line;
            const std::size_t start = i;
            i += 2;
            while (i + 1 < n &&
                   !(content[i] == '*' && content[i + 1] == '/')) {
                if (content[i] == '\n')
                    ++line;
                ++i;
            }
            const std::size_t end = i;
            i = (i + 1 < n) ? i + 2 : n;
            parseDirective(content.substr(start + 2, end - start - 2),
                           start_line, own, out);
            continue;
        }

        // String and character literals.
        if (c == '"') {
            const std::size_t at = line;
            push(TokKind::String, skipQuoted('"'), at);
            continue;
        }
        if (c == '\'') {
            const std::size_t at = line;
            skipQuoted('\'');
            push(TokKind::CharLit, "''", at);
            continue;
        }

        // Numbers (including hex floats and digit separators).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
            const std::size_t start = i;
            const bool hex = c == '0' && i + 1 < n &&
                             (content[i + 1] == 'x' || content[i + 1] == 'X');
            bool is_float = false;
            while (i < n) {
                const char d = content[i];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '\'' || d == '.') {
                    if (d == '.')
                        is_float = true;
                    if (!hex && (d == 'e' || d == 'E'))
                        is_float = true;
                    if (hex && (d == 'p' || d == 'P'))
                        is_float = true;
                    ++i;
                } else if ((d == '+' || d == '-') && i > start &&
                           (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                            content[i - 1] == 'p' ||
                            content[i - 1] == 'P') &&
                           !(hex && (content[i - 1] == 'e' ||
                                     content[i - 1] == 'E'))) {
                    ++i; // exponent sign
                } else {
                    break;
                }
            }
            push(TokKind::Number,
                 std::string(content.substr(start, i - start)), line,
                 is_float);
            continue;
        }

        // Identifiers (and raw-string prefixes).
        if (isIdentStart(c)) {
            const std::size_t start = i;
            while (i < n && isIdentChar(content[i]))
                ++i;
            std::string text(content.substr(start, i - start));
            // R"delim(...)delim" — the prefix is part of the literal.
            if (i < n && content[i] == '"' &&
                (text == "R" || text == "u8R" || text == "uR" ||
                 text == "UR" || text == "LR")) {
                const std::size_t at = line;
                ++i; // opening quote
                std::string delim;
                while (i < n && content[i] != '(')
                    delim += content[i++];
                const std::string closer = ")" + delim + "\"";
                const std::size_t endpos = content.find(closer, i);
                std::string body;
                if (endpos == std::string_view::npos) {
                    i = n;
                } else {
                    // Past the '(' that ends the delimiter.
                    body = std::string(
                        content.substr(i + 1, endpos - i - 1));
                    for (std::size_t k = i; k < endpos; ++k)
                        if (content[k] == '\n')
                            ++line;
                    i = endpos + closer.size();
                }
                push(TokKind::String, std::move(body), at);
                continue;
            }
            push(TokKind::Identifier, std::move(text), line);
            continue;
        }

        // Punctuation: longest match over the two-char table.
        if (i + 1 < n) {
            const std::string two{content[i], content[i + 1]};
            bool matched = false;
            for (const char *op : twoCharOps) {
                if (two == op) {
                    push(TokKind::Punct, two, line);
                    i += 2;
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
        }
        push(TokKind::Punct, std::string(1, c), line);
        ++i;
    }

    out.lineCount = line;
    return out;
}

} // namespace gds::lint
