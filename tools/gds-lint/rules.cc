#include "rules.hh"

#include <algorithm>
#include <unordered_set>

namespace gds::lint
{

namespace
{

bool
startsWith(const std::string &s, std::string_view prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isHeaderPath(const std::string &rel)
{
    return endsWith(rel, ".hh") || endsWith(rel, ".h") ||
           endsWith(rel, ".hpp");
}

/** Layers whose failure paths face users: gds_assert is banned here. */
bool
inUserFacingLayer(const std::string &rel)
{
    return startsWith(rel, "src/algo/") || startsWith(rel, "src/graph/") ||
           startsWith(rel, "src/stats/") || startsWith(rel, "src/energy/");
}

bool
isIdent(const Token &t, std::string_view text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

// --- R1: no naked asserts ------------------------------------------------

void
ruleNakedAssert(const LexedFile &f, const std::string &rel,
                std::vector<Diagnostic> &out)
{
    const bool ban_gds_assert = inUserFacingLayer(rel);
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isPunct(toks[i + 1], "("))
            continue;
        if (isIdent(toks[i], "assert")) {
            out.push_back({f.path, toks[i].line, "no-naked-assert",
                           "C assert() is compiled out under NDEBUG; throw "
                           "a typed SimError, or use gds_assert for "
                           "internal invariants in core model code",
                           false});
        } else if (ban_gds_assert && isIdent(toks[i], "gds_assert")) {
            out.push_back({f.path, toks[i].line, "no-naked-assert",
                           "gds_assert aborts the whole process; "
                           "user-facing layers must throw a typed SimError "
                           "(ConfigError / CorruptInputError)",
                           false});
        }
    }
}

// --- R2: no raw stderr ---------------------------------------------------

void
ruleRawStderr(const LexedFile &f, const std::string &rel,
              std::vector<Diagnostic> &out)
{
    if (startsWith(rel, "src/common/logging") ||
        startsWith(rel, "src/common/debug"))
        return;
    for (const Token &t : f.tokens) {
        if (isIdent(t, "cerr") || isIdent(t, "clog") ||
            isIdent(t, "stderr")) {
            out.push_back({f.path, t.line, "no-raw-stderr",
                           "raw " + t.text + " bypasses serialized "
                           "emission; report through common/logging "
                           "(warn/inform) or common/debug (GDS_DPRINTF)",
                           false});
        }
    }
}

// --- R3: no unseeded randomness ------------------------------------------

/** Standard engines whose argless construction is nondeterministic only in
 *  the sense that nothing pins the seed to the experiment record. */
const std::unordered_set<std::string> stdEngines = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
};

void
ruleUnseededRng(const LexedFile &f, const std::string &rel,
                std::vector<Diagnostic> &out)
{
    if (startsWith(rel, "src/common/rng"))
        return;
    const auto &toks = f.tokens;
    auto flag = [&](const Token &t, const std::string &what) {
        out.push_back({f.path, t.line, "no-unseeded-rng",
                       what + " breaks run-to-run determinism (cached "
                       "matrix cells are byte-compared); seed explicitly "
                       "via gds::Rng from common/rng.hh",
                       false});
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier)
            continue;
        if ((t.text == "rand" || t.text == "srand") && i + 1 < toks.size() &&
            isPunct(toks[i + 1], "(")) {
            flag(t, t.text + "()");
            continue;
        }
        if (t.text == "random_device") {
            flag(t, "std::random_device");
            continue;
        }
        if (stdEngines.count(t.text) == 0)
            continue;
        // Engine type name: argless construction is a violation, seeded
        // construction is allowed. Skip `engine::member` type usage.
        std::size_t j = i + 1;
        if (j < toks.size() && isPunct(toks[j], "::"))
            continue;
        if (j < toks.size() && toks[j].kind == TokKind::Identifier)
            ++j; // variable name in a declaration
        if (j >= toks.size())
            continue;
        if (isPunct(toks[j], ";")) {
            flag(t, "default-constructed std::" + t.text);
        } else if ((isPunct(toks[j], "(") || isPunct(toks[j], "{")) &&
                   j + 1 < toks.size() &&
                   isPunct(toks[j + 1], toks[j].text == "(" ? ")" : "}")) {
            flag(t, "arglessly constructed std::" + t.text);
        }
    }
}

// --- R4: no floating-point equality --------------------------------------

void
ruleFloatEq(const LexedFile &f, const std::string &rel,
            std::vector<Diagnostic> &out)
{
    if (!startsWith(rel, "src/energy/") && !startsWith(rel, "src/stats/"))
        return;
    const auto &toks = f.tokens;

    // Pass 1: names declared with a float/double type in this file.
    std::unordered_set<std::string> float_names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "double") && !isIdent(toks[i], "float"))
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                isIdent(toks[j], "const")))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Identifier)
            float_names.insert(toks[j].text);
    }

    auto floaty = [&](const Token &t) {
        if (t.kind == TokKind::Number && t.isFloat)
            return true;
        return t.kind == TokKind::Identifier && float_names.count(t.text) > 0;
    };

    // Pass 2: flag ==/!= with a float-ish operand on either side.
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        if (!isPunct(toks[i], "==") && !isPunct(toks[i], "!="))
            continue;
        if (floaty(toks[i - 1]) || floaty(toks[i + 1])) {
            out.push_back({f.path, toks[i].line, "no-float-eq",
                           "'" + toks[i].text + "' on floating-point "
                           "values is representation-sensitive; compare "
                           "against a tolerance or restructure the test",
                           false});
        }
    }
}

// --- R5: header hygiene ---------------------------------------------------

void
ruleHeaderHygiene(const LexedFile &f, const std::string &rel,
                  std::vector<Diagnostic> &out)
{
    if (!isHeaderPath(rel))
        return;
    const auto &toks = f.tokens;
    bool has_pragma_once = false;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isPunct(toks[i], "#") && isIdent(toks[i + 1], "pragma") &&
            isIdent(toks[i + 2], "once")) {
            has_pragma_once = true;
            break;
        }
    }
    if (!has_pragma_once) {
        out.push_back({f.path, 1, "header-hygiene",
                       "header lacks #pragma once", true});
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (isIdent(toks[i], "using") && isIdent(toks[i + 1], "namespace")) {
            out.push_back({f.path, toks[i].line, "header-hygiene",
                           "'using namespace' in a header leaks into "
                           "every includer",
                           false});
        }
    }
}

// --- R6: Component watchdog hooks ----------------------------------------

void
ruleComponentHooks(const LexedFile &f, std::vector<Diagnostic> &out)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "class") && !isIdent(toks[i], "struct"))
            continue;
        if (toks[i + 1].kind != TokKind::Identifier)
            continue;
        const std::string &class_name = toks[i + 1].text;
        const std::size_t class_line = toks[i].line;

        // Find the base-clause ':' (if any) before the body '{'; a ';'
        // first means a forward declaration or enum-ish use.
        std::size_t j = i + 2;
        if (j < toks.size() && isIdent(toks[j], "final"))
            ++j;
        if (j >= toks.size() || !isPunct(toks[j], ":"))
            continue;
        ++j;
        bool derives_component = false;
        while (j < toks.size() && !isPunct(toks[j], "{") &&
               !isPunct(toks[j], ";")) {
            if (isIdent(toks[j], "Component"))
                derives_component = true;
            ++j;
        }
        if (!derives_component || j >= toks.size() || !isPunct(toks[j], "{"))
            continue;

        // Scan the class body for overrides of the diagnostic hooks.
        std::size_t depth = 1;
        bool has_busy = false;
        bool has_debug_state = false;
        bool has_activity = false;
        bool has_next_event = false;
        for (++j; j < toks.size() && depth > 0; ++j) {
            if (isPunct(toks[j], "{"))
                ++depth;
            else if (isPunct(toks[j], "}"))
                --depth;
            else if (isIdent(toks[j], "busy"))
                has_busy = true;
            else if (isIdent(toks[j], "debugState"))
                has_debug_state = true;
            else if (isIdent(toks[j], "activityCounter"))
                has_activity = true;
            else if (isIdent(toks[j], "nextEventCycle"))
                has_next_event = true;
        }
        // A class that overrides busy() has wait states of its own, so the
        // inherited busy-based nextEventCycle() default no longer describes
        // them: it must state its own fast-forward horizon.
        const bool needs_next_event = has_busy && !has_next_event;
        if (!has_busy || !has_debug_state || !has_activity ||
            needs_next_event) {
            std::vector<std::string> hooks;
            if (!has_busy)
                hooks.push_back("busy()");
            if (!has_debug_state)
                hooks.push_back("debugState()");
            if (!has_activity)
                hooks.push_back("activityCounter()");
            if (needs_next_event)
                hooks.push_back("nextEventCycle()");
            std::string missing;
            for (std::size_t k = 0; k < hooks.size(); ++k) {
                if (k != 0)
                    missing += k + 1 == hooks.size() ? " and " : ", ";
                missing += hooks[k];
            }
            out.push_back({f.path, class_line, "component-hooks",
                           "Component subclass '" + class_name +
                           "' must override the diagnostic hook(s) " +
                           missing + " so deadlock snapshots, activity "
                           "traces and fast-forward horizons stay "
                           "actionable",
                           false});
        }
    }
}

// --- R7: Component checkpoint hooks ---------------------------------------

void
ruleCheckpointHooks(const LexedFile &f, std::vector<Diagnostic> &out)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "class") && !isIdent(toks[i], "struct"))
            continue;
        if (toks[i + 1].kind != TokKind::Identifier)
            continue;
        const std::string &class_name = toks[i + 1].text;
        const std::size_t class_line = toks[i].line;

        std::size_t j = i + 2;
        if (j < toks.size() && isIdent(toks[j], "final"))
            ++j;
        if (j >= toks.size() || !isPunct(toks[j], ":"))
            continue;
        ++j;
        bool derives_component = false;
        while (j < toks.size() && !isPunct(toks[j], "{") &&
               !isPunct(toks[j], ";")) {
            if (isIdent(toks[j], "Component"))
                derives_component = true;
            ++j;
        }
        if (!derives_component || j >= toks.size() || !isPunct(toks[j], "{"))
            continue;

        // Scan the class body for the serialization pair. A component
        // missing either half silently drops its state from every
        // checkpoint, which surfaces much later as a non-bit-exact resume.
        std::size_t depth = 1;
        bool has_save = false;
        bool has_restore = false;
        for (++j; j < toks.size() && depth > 0; ++j) {
            if (isPunct(toks[j], "{"))
                ++depth;
            else if (isPunct(toks[j], "}"))
                --depth;
            else if (isIdent(toks[j], "saveState"))
                has_save = true;
            else if (isIdent(toks[j], "restoreState"))
                has_restore = true;
        }
        if (has_save && has_restore)
            continue;
        std::string missing;
        if (!has_save && !has_restore)
            missing = "saveState() and restoreState()";
        else
            missing = has_save ? "restoreState()" : "saveState()";
        out.push_back({f.path, class_line, "checkpoint-hooks",
                       "Component subclass '" + class_name +
                       "' must override " + missing + " so mid-run "
                       "checkpoints capture its state (see "
                       "src/sim/checkpoint.hh)",
                       false});
    }
}

// --- R10: env-knob discipline ---------------------------------------------

void
ruleEnvKnob(const LexedFile &f, const std::string &rel,
            std::vector<Diagnostic> &out)
{
    // The two sanctioned homes of raw getenv: the strict parse helpers
    // themselves, and the GDS_DEBUG bootstrap that runs before they load.
    if (startsWith(rel, "src/common/parse") ||
        startsWith(rel, "src/common/debug"))
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "getenv") || !isPunct(toks[i + 1], "("))
            continue;
        const Token &arg = toks[i + 2];
        if (arg.kind != TokKind::String ||
            arg.text.compare(0, 4, "GDS_") != 0)
            continue;
        out.push_back({f.path, toks[i].line, "env-knob-discipline",
                       "raw getenv(\"" + arg.text + "\") bypasses the "
                       "env-knob policy (strict parse, warn-and-default on "
                       "bad input); use common::parseEnvU64 / parseEnvF64 "
                       "/ parseEnvStr / envFlag from common/parse.hh",
                       false});
    }
}

// --- R11: no raw cerr logging ---------------------------------------------

void
ruleRawCerrLogging(const LexedFile &f, const std::string &rel,
                   std::vector<Diagnostic> &out)
{
    // Narrower than R2: even R2's src/common/logging carve-out may not
    // stream to std::cerr — iostream writes are not atomic per line, so
    // concurrent daemon threads would shear log lines. Everything funnels
    // through detail::emitRawLine() (one fprintf under one mutex); only
    // the structured logger and the debug bootstrap own the stream.
    if (rel == "src/common/log.cc" || startsWith(rel, "src/common/debug"))
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (isIdent(toks[i], "cerr") && isPunct(toks[i + 1], "<<")) {
            out.push_back({f.path, toks[i].line, "no-raw-cerr-logging",
                           "streaming to std::cerr can shear lines under "
                           "concurrency; log through common/log "
                           "(log::write / log::warnf) so emission stays "
                           "mutex-serialized",
                           false});
        }
    }
}

} // namespace

const std::vector<std::string> &
knownRules()
{
    static const std::vector<std::string> rules = {
        "no-naked-assert",
        "no-raw-stderr",
        "no-unseeded-rng",
        "no-float-eq",
        "header-hygiene",
        "component-hooks",
        "checkpoint-hooks",
        "checkpoint-field-coverage",
        "save-restore-symmetry",
        "env-knob-discipline",
        "no-raw-cerr-logging",
    };
    return rules;
}

std::vector<Diagnostic>
runFileRules(const LexedFile &file, const std::string &rel_path)
{
    std::vector<Diagnostic> found;
    ruleNakedAssert(file, rel_path, found);
    ruleRawStderr(file, rel_path, found);
    ruleUnseededRng(file, rel_path, found);
    ruleFloatEq(file, rel_path, found);
    ruleHeaderHygiene(file, rel_path, found);
    ruleComponentHooks(file, found);
    ruleCheckpointHooks(file, found);
    ruleEnvKnob(file, rel_path, found);
    ruleRawCerrLogging(file, rel_path, found);

    // Malformed directives and unknown rule names are violations too:
    // a suppression that silently fails to apply would be worse.
    for (const BadDirective &bad : file.badDirectives)
        found.push_back({file.path, bad.line, "bad-suppression",
                         bad.message, false});
    const auto &known = knownRules();
    for (const Suppression &s : file.suppressions) {
        if (std::find(known.begin(), known.end(), s.rule) == known.end()) {
            found.push_back({file.path, s.line, "bad-suppression",
                             "allow() names unknown rule '" + s.rule + "'",
                             false});
        }
    }
    return found;
}

std::vector<Diagnostic>
applySuppressions(std::vector<Diagnostic> diags, const LexedFile &file)
{
    // An own-line suppression covers the next line that has code on it
    // (justifications are allowed to wrap over several comment lines).
    std::vector<std::size_t> token_lines;
    token_lines.reserve(file.tokens.size());
    for (const Token &t : file.tokens)
        token_lines.push_back(t.line);
    std::sort(token_lines.begin(), token_lines.end());
    auto next_code_line = [&](std::size_t after) -> std::size_t {
        auto it = std::upper_bound(token_lines.begin(), token_lines.end(),
                                   after);
        return it == token_lines.end() ? 0 : *it;
    };

    std::vector<Diagnostic> kept;
    for (Diagnostic &d : diags) {
        bool suppressed = false;
        for (const Suppression &s : file.suppressions) {
            if (s.rule != d.rule)
                continue;
            if (d.fileLevel || s.line == d.line ||
                (s.ownLine && next_code_line(s.line) == d.line)) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            kept.push_back(std::move(d));
    }

    std::sort(kept.begin(), kept.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

std::vector<Diagnostic>
runRules(const LexedFile &file, const std::string &rel_path)
{
    return applySuppressions(runFileRules(file, rel_path), file);
}

} // namespace gds::lint
