#include "model.hh"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "rules.hh"

namespace gds::lint
{

namespace
{

bool
isIdent(const Token &t, std::string_view text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Index of the token after the matching close brace of toks[open]. */
std::size_t
skipBraced(const std::vector<Token> &toks, std::size_t open)
{
    std::size_t depth = 0;
    std::size_t j = open;
    for (; j < toks.size(); ++j) {
        if (isPunct(toks[j], "{"))
            ++depth;
        else if (isPunct(toks[j], "}") && --depth == 0)
            return j + 1;
    }
    return j;
}

/** Keywords that disqualify a class-body statement from being a
 *  non-static data member. */
bool
isNonMemberLead(const Token &t)
{
    return isIdent(t, "using") || isIdent(t, "typedef") ||
           isIdent(t, "friend") || isIdent(t, "static") ||
           isIdent(t, "struct") || isIdent(t, "class") ||
           isIdent(t, "enum") || isIdent(t, "union") ||
           isIdent(t, "template");
}

const char *const hookNames[] = {"saveState", "restoreState",
                                 "nextEventCycle"};

HookBody *
hookSlot(ComponentModel &cm, const std::string &name)
{
    if (name == "saveState")
        return &cm.save;
    if (name == "restoreState")
        return &cm.restore;
    if (name == "nextEventCycle")
        return &cm.nextEvent;
    return nullptr;
}

/**
 * Parse one class body (toks[open] == '{') into fields and inline hook
 * bodies. Statements are walked at body depth only; nested type
 * definitions and function bodies are skipped wholesale, so only the
 * class's own non-static data members are recorded.
 */
void
parseClassBody(const std::vector<Token> &toks, std::size_t open,
               ComponentModel &cm)
{
    const std::size_t end = skipBraced(toks, open) - 1; // the '}' itself
    std::size_t i = open + 1;
    while (i < end) {
        // Access specifiers are statement separators, not statements.
        if ((isIdent(toks[i], "public") || isIdent(toks[i], "private") ||
             isIdent(toks[i], "protected")) &&
            i + 1 < end && isPunct(toks[i + 1], ":")) {
            i += 2;
            continue;
        }

        // Collect the statement prefix: tokens up to the first ';', '=',
        // '{' or '(' at statement level (angle brackets of template
        // arguments never contain any of those in this codebase).
        const std::size_t stmt_begin = i;
        std::size_t j = i;
        while (j < end && !isPunct(toks[j], ";") && !isPunct(toks[j], "=") &&
               !isPunct(toks[j], "{") && !isPunct(toks[j], "("))
            ++j;
        if (j >= end) {
            i = end;
            break;
        }

        if (isPunct(toks[j], "(")) {
            // Function (declaration, definition, or constructor). Check
            // whether it is one of the modeled hooks.
            HookBody *hook = nullptr;
            if (j > stmt_begin && toks[j - 1].kind == TokKind::Identifier)
                hook = hookSlot(cm, toks[j - 1].text);
            if (hook != nullptr)
                hook->declared = true;
            // Skip to the end of the declaration or definition: past the
            // parameter list, any qualifiers/initializer list, then either
            // ';' or a brace body.
            std::size_t depth = 0;
            while (j < end) {
                if (isPunct(toks[j], "("))
                    ++depth;
                else if (isPunct(toks[j], ")") && --depth == 0) {
                    ++j;
                    break;
                }
                ++j;
            }
            while (j < end && !isPunct(toks[j], ";") &&
                   !isPunct(toks[j], "{"))
                ++j;
            if (j < end && isPunct(toks[j], "{")) {
                const std::size_t body_end = skipBraced(toks, j) - 1;
                if (hook != nullptr && !hook->defined) {
                    hook->defined = true;
                    hook->file = cm.file;
                    hook->line = toks[j].line;
                    hook->tokens.assign(toks.begin() + j + 1,
                                        toks.begin() + body_end);
                }
                i = body_end + 1;
                // A constructor body may be followed by nothing; a
                // nested lambda-less definition never needs the ';'.
                if (i < end && isPunct(toks[i], ";"))
                    ++i;
            } else {
                i = j < end ? j + 1 : end;
            }
            continue;
        }

        if (isNonMemberLead(toks[stmt_begin])) {
            // Nested type definition, alias, friend or static member:
            // skip to the statement end, stepping over any brace body.
            while (j < end && !isPunct(toks[j], ";")) {
                if (isPunct(toks[j], "{")) {
                    j = skipBraced(toks, j);
                    continue;
                }
                ++j;
            }
            i = j < end ? j + 1 : end;
            continue;
        }

        if (isPunct(toks[j], "=") || isPunct(toks[j], "{") ||
            isPunct(toks[j], ";")) {
            // Candidate data member: name is the last identifier of the
            // prefix (ignoring a trailing [array] extent).
            std::size_t name_end = j;
            if (name_end > stmt_begin && isPunct(toks[name_end - 1], "]")) {
                while (name_end > stmt_begin &&
                       !isPunct(toks[name_end - 1], "["))
                    --name_end;
                if (name_end > stmt_begin)
                    --name_end; // the '[' itself
            }
            std::size_t name_idx = name_end;
            while (name_idx > stmt_begin &&
                   toks[name_idx - 1].kind != TokKind::Identifier)
                --name_idx;
            if (name_idx > stmt_begin) {
                const Token &name_tok = toks[name_idx - 1];
                std::string type;
                bool stats_type = false;
                for (std::size_t k = stmt_begin; k + 1 < name_idx; ++k) {
                    if (!type.empty())
                        type += ' ';
                    type += toks[k].text;
                    if (isIdent(toks[k], "stats") && k + 1 < name_idx &&
                        isPunct(toks[k + 1], "::"))
                        stats_type = true;
                }
                if (!type.empty()) {
                    cm.fields.push_back({name_tok.text, type, name_tok.line,
                                         stats_type});
                }
            }
            // Step past the initializer (if any) to the ';'.
            while (j < end && !isPunct(toks[j], ";")) {
                if (isPunct(toks[j], "{")) {
                    j = skipBraced(toks, j);
                    continue;
                }
                ++j;
            }
            i = j < end ? j + 1 : end;
            continue;
        }
        i = j + 1; // defensive: never stall
    }
}

/** Find `class|struct Name [final] : ...Component... {` definitions in
 *  @p file and append a ComponentModel per match. */
void
collectComponents(const LexedFile &file, const std::string &rel,
                  ClassModel &model)
{
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "class") && !isIdent(toks[i], "struct"))
            continue;
        if (toks[i + 1].kind != TokKind::Identifier)
            continue;
        std::size_t j = i + 2;
        if (j < toks.size() && isIdent(toks[j], "final"))
            ++j;
        if (j >= toks.size() || !isPunct(toks[j], ":"))
            continue;
        ++j;
        bool derives_component = false;
        while (j < toks.size() && !isPunct(toks[j], "{") &&
               !isPunct(toks[j], ";")) {
            if (isIdent(toks[j], "Component"))
                derives_component = true;
            ++j;
        }
        if (!derives_component || j >= toks.size() || !isPunct(toks[j], "{"))
            continue;

        ComponentModel cm;
        cm.name = toks[i + 1].text;
        cm.file = file.path;
        cm.relPath = rel;
        cm.line = toks[i].line;
        cm.skips = file.ckptSkips;
        parseClassBody(toks, j, cm);
        model.components.push_back(std::move(cm));
    }
}

/** Attach out-of-line `Class::hook(...) ... { body }` definitions found
 *  anywhere in the scanned set to their class. */
void
collectOutOfLineBodies(const LexedFile &file, ClassModel &model)
{
    std::unordered_map<std::string, ComponentModel *> by_name;
    for (ComponentModel &cm : model.components)
        by_name.emplace(cm.name, &cm);

    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier ||
            !isPunct(toks[i + 1], "::"))
            continue;
        const Token &hook_tok = toks[i + 2];
        if (hook_tok.kind != TokKind::Identifier ||
            !isPunct(toks[i + 3], "("))
            continue;
        bool is_hook = false;
        for (const char *h : hookNames)
            is_hook = is_hook || hook_tok.text == h;
        if (!is_hook)
            continue;
        const auto it = by_name.find(toks[i].text);
        if (it == by_name.end())
            continue;
        // Skip the parameter list, then any qualifiers, then require a
        // brace body (a ';' here is a mere declaration — or a qualified
        // call like sim::Component::saveState(s), which also ends in
        // ';'/',' and is rejected the same way).
        std::size_t j = i + 3;
        std::size_t depth = 0;
        while (j < toks.size()) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")") && --depth == 0) {
                ++j;
                break;
            }
            ++j;
        }
        while (j < toks.size() &&
               (isIdent(toks[j], "const") || isIdent(toks[j], "noexcept") ||
                isIdent(toks[j], "override") || isIdent(toks[j], "final")))
            ++j;
        if (j >= toks.size() || !isPunct(toks[j], "{"))
            continue;
        const std::size_t body_end = skipBraced(toks, j) - 1;
        HookBody *hook = hookSlot(*it->second, hook_tok.text);
        if (hook == nullptr || hook->defined)
            continue;
        hook->declared = true;
        hook->defined = true;
        hook->file = file.path;
        hook->line = toks[j].line;
        hook->tokens.assign(toks.begin() + j + 1, toks.begin() + body_end);
    }
}

/** True when @p name appears as an identifier in @p body. */
bool
referencesField(const HookBody &body, const std::string &name)
{
    for (const Token &t : body.tokens)
        if (t.kind == TokKind::Identifier && t.text == name)
            return true;
    return false;
}

/** First-occurrence order of @p names in @p body. */
std::vector<std::string>
referenceOrder(const HookBody &body,
               const std::unordered_set<std::string> &names)
{
    std::vector<std::string> order;
    std::unordered_set<std::string> seen;
    for (const Token &t : body.tokens) {
        if (t.kind != TokKind::Identifier || names.count(t.text) == 0 ||
            !seen.insert(t.text).second)
            continue;
        order.push_back(t.text);
    }
    return order;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

} // namespace

ClassModel
buildModel(const std::vector<LexedFile> &files,
           const std::vector<std::string> &rel_paths)
{
    ClassModel model;
    for (std::size_t i = 0; i < files.size(); ++i)
        collectComponents(files[i], rel_paths[i], model);
    for (const LexedFile &file : files)
        collectOutOfLineBodies(file, model);
    return model;
}

void
runModelRules(const ClassModel &model, std::vector<Diagnostic> &out)
{
    // gds-ckpt: skip(<field>) directives that name no data member of any
    // component declared in their file would silently fail to apply;
    // collect the per-file field universe first so they can be rejected.
    std::map<std::string, std::unordered_set<std::string>> fields_by_file;
    std::map<std::string, const CkptSkip *> reported_skips;
    for (const ComponentModel &cm : model.components) {
        auto &set = fields_by_file[cm.file];
        for (const FieldDecl &f : cm.fields)
            set.insert(f.name);
    }
    for (const ComponentModel &cm : model.components) {
        const auto &known = fields_by_file[cm.file];
        for (const CkptSkip &skip : cm.skips) {
            if (known.count(skip.field) != 0)
                continue;
            // One report per directive even when the file declares
            // several components sharing the skip list.
            const std::string key =
                cm.file + ":" + std::to_string(skip.line);
            if (!reported_skips.emplace(key, &skip).second)
                continue;
            out.push_back({cm.file, skip.line, "bad-suppression",
                           "gds-ckpt: skip(" + skip.field + ") names no "
                           "data member of a Component declared in this "
                           "file",
                           false});
        }
    }

    for (const ComponentModel &cm : model.components) {
        // Without both bodies visible there is nothing semantic to
        // check: R7 (checkpoint-hooks) polices that the pair exists,
        // and a partial view (single-file lint of a header whose
        // bodies live in the .cc) must not produce false positives.
        if (!cm.save.defined || !cm.restore.defined)
            continue;

        std::unordered_set<std::string> skipped;
        for (const CkptSkip &skip : cm.skips)
            skipped.insert(skip.field);

        // R8: every field covered by both bodies, skipped, or stats-typed.
        std::unordered_set<std::string> symmetric; // feed into R9
        for (const FieldDecl &f : cm.fields) {
            if (f.statsType)
                continue; // Component::saveState walks registered stats
            const bool saved = referencesField(cm.save, f.name);
            const bool restored = referencesField(cm.restore, f.name);
            if (skipped.count(f.name) != 0) {
                if (saved && restored) {
                    out.push_back(
                        {cm.file, f.line, "bad-suppression",
                         "stale gds-ckpt: skip(" + f.name + "): the field "
                         "is serialized by both saveState() and "
                         "restoreState(); drop the directive",
                         false});
                }
                continue;
            }
            if (saved && restored) {
                symmetric.insert(f.name);
                continue;
            }
            std::string what;
            if (!saved && !restored) {
                what = "is serialized by neither saveState() nor "
                       "restoreState(): a checkpoint silently drops it "
                       "and every resume diverges";
            } else if (saved) {
                what = "is written by saveState() but never read back by "
                       "restoreState(), so the restored stream "
                       "misaligns";
            } else {
                what = "is read by restoreState() but never written by "
                       "saveState(), so restore consumes bytes that were "
                       "never produced";
            }
            out.push_back({cm.file, f.line, "checkpoint-field-coverage",
                           "Component '" + cm.name + "' field '" + f.name +
                           "' " + what + "; serialize it in both hooks or "
                           "annotate '// gds-ckpt: skip(" + f.name +
                           ") <justification>' for config-derived state",
                           false});
        }

        // R9: the two bodies must reference the serialized fields in the
        // same order — the byte stream has no field tags, so order drift
        // produces a checksum-valid checkpoint that restores garbage.
        const std::vector<std::string> save_order =
            referenceOrder(cm.save, symmetric);
        const std::vector<std::string> restore_order =
            referenceOrder(cm.restore, symmetric);
        for (std::size_t k = 0;
             k < save_order.size() && k < restore_order.size(); ++k) {
            if (save_order[k] == restore_order[k])
                continue;
            out.push_back(
                {cm.restore.file, cm.restore.line, "save-restore-symmetry",
                 "Component '" + cm.name + "': restoreState() consumes "
                 "fields in a different order than saveState() produces "
                 "them (first divergence: saveState writes '" +
                 save_order[k] + "' where restoreState reads '" +
                 restore_order[k] + "'; save order [" +
                 joinNames(save_order) + "], restore order [" +
                 joinNames(restore_order) + "])",
                 false});
            break;
        }
    }
}

} // namespace gds::lint
