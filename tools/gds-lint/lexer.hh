/**
 * @file
 * A lightweight C++ lexer for gds-lint. It is not a full C++ front end:
 * it splits a translation unit into identifier / number / string / char /
 * punctuation tokens with line numbers, strips comments (harvesting
 * `// gds-lint: allow(<rule>) <justification>` suppressions and
 * `// gds-ckpt: skip(<field>) <justification>` checkpoint exemptions on
 * the way), and handles raw strings, digit separators, and multi-char
 * operators. That is exactly enough surface for the project rules in
 * rules.hh and the class model in model.hh while staying dependency-free
 * (no libclang).
 */

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gds::lint
{

enum class TokKind
{
    Identifier,
    Number,
    String,
    CharLit,
    Punct,
};

/** One lexical token. Comments and whitespace are not tokens. */
struct Token
{
    TokKind kind;
    /** Identifier/Number/Punct: the spelling. String: the literal's
     *  contents without quotes (escapes unprocessed) so rules can match
     *  arguments like getenv("GDS_..."). CharLit: always "''". */
    std::string text;
    std::size_t line; ///< 1-based line the token starts on
    bool isFloat = false; ///< Number only: has a '.' or an exponent
};

/** A parsed `// gds-lint: allow(<rule>) <justification>` directive. */
struct Suppression
{
    std::size_t line; ///< line the comment starts on
    std::string rule;
    std::string justification;
    /** True when no code precedes the comment on its line (the
     *  suppression then also covers the next line with code on it, so
     *  justifications may wrap over several comment lines). */
    bool ownLine;
};

/**
 * A parsed `// gds-ckpt: skip(<field>) <justification>` directive: the
 * named data member of a Component declared in this file is exempt from
 * R8 checkpoint-field-coverage (config-derived or per-call scratch state
 * that the constructor rebuilds and saveState() must not serialize).
 */
struct CkptSkip
{
    std::size_t line; ///< line the comment starts on
    std::string field;
    std::string justification;
};

/** A comment that mentions gds-lint/gds-ckpt but does not parse as a
 *  directive. */
struct BadDirective
{
    std::size_t line;
    std::string message;
};

/** Token stream plus suppression metadata for one file. */
struct LexedFile
{
    std::string path;
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;
    std::vector<CkptSkip> ckptSkips;
    std::vector<BadDirective> badDirectives;
    std::size_t lineCount = 0;
};

/** Lex @p content (the full text of @p path). Never fails: unexpected
 *  bytes are skipped so the rules still see everything lexable. */
LexedFile lexFile(std::string path, std::string_view content);

} // namespace gds::lint
