#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <system_error>

#include "stats/json.hh"

namespace fs = std::filesystem;

namespace gds::lint
{

namespace
{

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" || ext == ".h" ||
           ext == ".hpp";
}

/** Directories never entered while recursing (explicit args still are). */
bool
skippedDir(const std::string &name)
{
    return name == ".git" || name == "lint_fixtures" ||
           name.compare(0, 5, "build") == 0;
}

void
collect(const fs::path &path, bool explicit_arg,
        std::vector<fs::path> &files, std::vector<ToolError> &errors)
{
    std::error_code ec;
    const fs::file_status st = fs::status(path, ec);
    if (ec) {
        errors.push_back({path.string(), ec.message()});
        return;
    }
    if (fs::is_directory(st)) {
        if (!explicit_arg && skippedDir(path.filename().string()))
            return;
        std::vector<fs::path> entries;
        for (const auto &entry : fs::directory_iterator(path, ec))
            entries.push_back(entry.path());
        if (ec) {
            errors.push_back({path.string(), ec.message()});
            return;
        }
        std::sort(entries.begin(), entries.end());
        for (const fs::path &entry : entries)
            collect(entry, false, files, errors);
        return;
    }
    if (!fs::is_regular_file(st)) {
        if (explicit_arg)
            errors.push_back({path.string(), "no such file or directory"});
        return;
    }
    if (explicit_arg || lintableExtension(path))
        files.push_back(path);
}

std::string
relativeTo(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::proximate(fs::absolute(file), root, ec);
    if (ec || rel.empty())
        return file.generic_string();
    return rel.generic_string();
}

} // namespace

std::vector<Diagnostic>
lintBuffer(const std::string &display_path, const std::string &rel_path,
           std::string_view content)
{
    return runRules(lexFile(display_path, content), rel_path);
}

LintResult
lintPaths(const std::vector<std::string> &paths, const std::string &root)
{
    LintResult result;
    std::vector<fs::path> files;
    for (const std::string &p : paths)
        collect(fs::path(p), true, files, result.errors);

    std::error_code ec;
    const fs::path abs_root =
        fs::absolute(root.empty() ? fs::path(".") : fs::path(root), ec);

    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            result.errors.push_back({file.string(), "cannot open file"});
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        if (in.bad()) {
            result.errors.push_back({file.string(), "read failure"});
            continue;
        }
        ++result.filesScanned;
        auto diags = lintBuffer(file.string(), relativeTo(file, abs_root),
                                buf.str());
        result.diagnostics.insert(result.diagnostics.end(),
                                  std::make_move_iterator(diags.begin()),
                                  std::make_move_iterator(diags.end()));
    }
    return result;
}

void
printDiagnostics(const LintResult &result, std::ostream &os)
{
    for (const Diagnostic &d : result.diagnostics) {
        os << d.path << ":" << d.line << ": " << d.rule << ": " << d.message
           << "\n";
    }
}

void
writeJsonSummary(const LintResult &result, std::ostream &os)
{
    std::map<std::string, std::size_t> per_rule;
    for (const Diagnostic &d : result.diagnostics)
        ++per_rule[d.rule];

    os << "{";
    stats::emitJsonString(os, "files_scanned");
    os << ": " << result.filesScanned << ", ";
    stats::emitJsonString(os, "violations");
    os << ": " << result.diagnostics.size() << ", ";
    stats::emitJsonString(os, "tool_errors");
    os << ": " << result.errors.size() << ", ";
    stats::emitJsonString(os, "rules");
    os << ": {";
    bool first = true;
    for (const auto &[rule, count] : per_rule) {
        if (!first)
            os << ", ";
        first = false;
        stats::emitJsonString(os, rule);
        os << ": " << count;
    }
    os << "}, ";
    stats::emitJsonString(os, "diagnostics");
    os << ": [";
    first = true;
    for (const Diagnostic &d : result.diagnostics) {
        if (!first)
            os << ", ";
        first = false;
        os << "{";
        stats::emitJsonString(os, "file");
        os << ": ";
        stats::emitJsonString(os, d.path);
        os << ", ";
        stats::emitJsonString(os, "line");
        os << ": " << d.line << ", ";
        stats::emitJsonString(os, "rule");
        os << ": ";
        stats::emitJsonString(os, d.rule);
        os << ", ";
        stats::emitJsonString(os, "message");
        os << ": ";
        stats::emitJsonString(os, d.message);
        os << "}";
    }
    os << "]}\n";
}

int
exitCode(const LintResult &result)
{
    if (!result.errors.empty())
        return 2;
    return result.diagnostics.empty() ? 0 : 1;
}

} // namespace gds::lint
