#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <system_error>

#include "model.hh"
#include "stats/json.hh"

namespace fs = std::filesystem;

namespace gds::lint
{

namespace
{

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" || ext == ".h" ||
           ext == ".hpp";
}

/** Directories never entered while recursing (explicit args still are). */
bool
skippedDir(const std::string &name)
{
    return name == ".git" || name == "lint_fixtures" ||
           name.compare(0, 5, "build") == 0;
}

void
collect(const fs::path &path, bool explicit_arg,
        std::vector<fs::path> &files, std::vector<ToolError> &errors)
{
    std::error_code ec;
    const fs::file_status st = fs::status(path, ec);
    if (ec) {
        errors.push_back({path.string(), ec.message()});
        return;
    }
    if (fs::is_directory(st)) {
        if (!explicit_arg && skippedDir(path.filename().string()))
            return;
        std::vector<fs::path> entries;
        for (const auto &entry : fs::directory_iterator(path, ec))
            entries.push_back(entry.path());
        if (ec) {
            errors.push_back({path.string(), ec.message()});
            return;
        }
        std::sort(entries.begin(), entries.end());
        for (const fs::path &entry : entries)
            collect(entry, false, files, errors);
        return;
    }
    if (!fs::is_regular_file(st)) {
        if (explicit_arg)
            errors.push_back({path.string(), "no such file or directory"});
        return;
    }
    if (explicit_arg || lintableExtension(path))
        files.push_back(path);
}

std::string
relativeTo(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::proximate(fs::absolute(file), root, ec);
    if (ec || rel.empty())
        return file.generic_string();
    return rel.generic_string();
}

} // namespace

LintResult
lintBuffers(const std::vector<BufferInput> &buffers)
{
    LintResult result;
    std::vector<LexedFile> lexed;
    std::vector<std::string> rels;
    lexed.reserve(buffers.size());
    rels.reserve(buffers.size());
    for (const BufferInput &b : buffers) {
        lexed.push_back(lexFile(b.displayPath, b.content));
        rels.push_back(b.relPath);
    }
    result.filesScanned = lexed.size();

    // Pass 1: token-local rules, unfiltered so the cross-file findings
    // can be merged in before suppressions apply.
    std::vector<std::vector<Diagnostic>> per_file(lexed.size());
    std::map<std::string, std::size_t> by_path;
    for (std::size_t i = 0; i < lexed.size(); ++i) {
        per_file[i] = runFileRules(lexed[i], rels[i]);
        by_path.emplace(lexed[i].path, i);
    }

    // Pass 2: the class model over the whole set. Each model diagnostic
    // is routed to the file it anchors to (field declaration for R8,
    // restore body for R9) so that file's allow() directives cover it.
    const ClassModel model = buildModel(lexed, rels);
    std::vector<Diagnostic> model_diags;
    runModelRules(model, model_diags);
    for (Diagnostic &d : model_diags) {
        const auto it = by_path.find(d.path);
        if (it != by_path.end())
            per_file[it->second].push_back(std::move(d));
        else
            result.diagnostics.push_back(std::move(d));
    }

    for (std::size_t i = 0; i < lexed.size(); ++i) {
        auto kept = applySuppressions(std::move(per_file[i]), lexed[i]);
        result.diagnostics.insert(result.diagnostics.end(),
                                  std::make_move_iterator(kept.begin()),
                                  std::make_move_iterator(kept.end()));
    }
    return result;
}

std::vector<Diagnostic>
lintBuffer(const std::string &display_path, const std::string &rel_path,
           std::string_view content)
{
    return lintBuffers({{display_path, rel_path, std::string(content)}})
        .diagnostics;
}

LintResult
lintPaths(const std::vector<std::string> &paths, const std::string &root)
{
    LintResult result;
    std::vector<fs::path> files;
    for (const std::string &p : paths)
        collect(fs::path(p), true, files, result.errors);

    std::error_code ec;
    const fs::path abs_root =
        fs::absolute(root.empty() ? fs::path(".") : fs::path(root), ec);

    std::vector<BufferInput> buffers;
    buffers.reserve(files.size());
    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            result.errors.push_back({file.string(), "cannot open file"});
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        if (in.bad()) {
            result.errors.push_back({file.string(), "read failure"});
            continue;
        }
        buffers.push_back(
            {file.string(), relativeTo(file, abs_root), buf.str()});
    }

    LintResult linted = lintBuffers(buffers);
    result.filesScanned = linted.filesScanned;
    result.diagnostics = std::move(linted.diagnostics);
    return result;
}

void
printDiagnostics(const LintResult &result, std::ostream &os)
{
    for (const Diagnostic &d : result.diagnostics) {
        os << d.path << ":" << d.line << ": " << d.rule << ": " << d.message
           << "\n";
    }
}

void
writeJsonSummary(const LintResult &result, std::ostream &os)
{
    std::map<std::string, std::size_t> per_rule;
    for (const Diagnostic &d : result.diagnostics)
        ++per_rule[d.rule];

    os << "{";
    stats::emitJsonString(os, "files_scanned");
    os << ": " << result.filesScanned << ", ";
    stats::emitJsonString(os, "violations");
    os << ": " << result.diagnostics.size() << ", ";
    stats::emitJsonString(os, "tool_errors");
    os << ": " << result.errors.size() << ", ";
    stats::emitJsonString(os, "rules");
    os << ": {";
    bool first = true;
    for (const auto &[rule, count] : per_rule) {
        if (!first)
            os << ", ";
        first = false;
        stats::emitJsonString(os, rule);
        os << ": " << count;
    }
    os << "}, ";
    stats::emitJsonString(os, "diagnostics");
    os << ": [";
    first = true;
    for (const Diagnostic &d : result.diagnostics) {
        if (!first)
            os << ", ";
        first = false;
        os << "{";
        stats::emitJsonString(os, "file");
        os << ": ";
        stats::emitJsonString(os, d.path);
        os << ", ";
        stats::emitJsonString(os, "line");
        os << ": " << d.line << ", ";
        stats::emitJsonString(os, "rule");
        os << ": ";
        stats::emitJsonString(os, d.rule);
        os << ", ";
        stats::emitJsonString(os, "message");
        os << ": ";
        stats::emitJsonString(os, d.message);
        os << "}";
    }
    os << "]}\n";
}

namespace
{

/** Short rule descriptions for the SARIF tool.driver.rules table. */
std::string
ruleDescription(const std::string &rule)
{
    if (rule == "no-naked-assert")
        return "C assert() is compiled out under NDEBUG; throw a typed "
               "SimError or use gds_assert in core model code";
    if (rule == "no-raw-stderr")
        return "raw stderr bypasses serialized emission; report through "
               "common/logging or common/debug";
    if (rule == "no-unseeded-rng")
        return "unseeded randomness breaks run-to-run determinism; seed "
               "explicitly via gds::Rng";
    if (rule == "no-float-eq")
        return "==/!= on floating-point values is representation-"
               "sensitive; compare against a tolerance";
    if (rule == "header-hygiene")
        return "headers carry #pragma once and never 'using namespace'";
    if (rule == "component-hooks")
        return "Component subclasses override the diagnostic hooks "
               "busy()/debugState()/activityCounter() (and "
               "nextEventCycle() when busy() is overridden)";
    if (rule == "checkpoint-hooks")
        return "Component subclasses override the serialization pair "
               "saveState()/restoreState()";
    if (rule == "checkpoint-field-coverage")
        return "every component data member is serialized by both "
               "saveState() and restoreState(), or carries a justified "
               "gds-ckpt: skip(<field>) exemption";
    if (rule == "save-restore-symmetry")
        return "saveState() and restoreState() serialize fields in the "
               "same order; the checkpoint byte stream has no field tags";
    if (rule == "env-knob-discipline")
        return "GDS_* environment knobs are read through the "
               "common/parse helpers, never raw std::getenv";
    if (rule == "no-raw-cerr-logging")
        return "streaming to std::cerr can shear lines under "
               "concurrency; log through common/log so emission stays "
               "mutex-serialized";
    if (rule == "bad-suppression")
        return "a gds-lint/gds-ckpt directive that does not parse, names "
               "an unknown rule or field, lacks a justification, or is "
               "stale";
    return rule;
}

/** SARIF artifact URIs must be repo-relative; strip a leading "./". */
std::string
sarifUri(const std::string &path)
{
    if (path.compare(0, 2, "./") == 0)
        return path.substr(2);
    return path;
}

} // namespace

void
writeSarif(const LintResult &result, std::ostream &os)
{
    std::vector<std::string> rules = knownRules();
    rules.push_back("bad-suppression");

    os << "{";
    stats::emitJsonString(os, "$schema");
    os << ": ";
    stats::emitJsonString(
        os, "https://json.schemastore.org/sarif-2.1.0.json");
    os << ", ";
    stats::emitJsonString(os, "version");
    os << ": ";
    stats::emitJsonString(os, "2.1.0");
    os << ", ";
    stats::emitJsonString(os, "runs");
    os << ": [{";
    stats::emitJsonString(os, "tool");
    os << ": {";
    stats::emitJsonString(os, "driver");
    os << ": {";
    stats::emitJsonString(os, "name");
    os << ": ";
    stats::emitJsonString(os, "gds-lint");
    os << ", ";
    stats::emitJsonString(os, "informationUri");
    os << ": ";
    stats::emitJsonString(os, "tools/gds-lint");
    os << ", ";
    stats::emitJsonString(os, "rules");
    os << ": [";
    bool first = true;
    for (const std::string &rule : rules) {
        if (!first)
            os << ", ";
        first = false;
        os << "{";
        stats::emitJsonString(os, "id");
        os << ": ";
        stats::emitJsonString(os, rule);
        os << ", ";
        stats::emitJsonString(os, "shortDescription");
        os << ": {";
        stats::emitJsonString(os, "text");
        os << ": ";
        stats::emitJsonString(os, ruleDescription(rule));
        os << "}, ";
        stats::emitJsonString(os, "defaultConfiguration");
        os << ": {";
        stats::emitJsonString(os, "level");
        os << ": ";
        stats::emitJsonString(os, "error");
        os << "}}";
    }
    os << "]}}, ";
    stats::emitJsonString(os, "results");
    os << ": [";
    first = true;
    for (const Diagnostic &d : result.diagnostics) {
        if (!first)
            os << ", ";
        first = false;
        os << "{";
        stats::emitJsonString(os, "ruleId");
        os << ": ";
        stats::emitJsonString(os, d.rule);
        os << ", ";
        stats::emitJsonString(os, "level");
        os << ": ";
        stats::emitJsonString(os, "error");
        os << ", ";
        stats::emitJsonString(os, "message");
        os << ": {";
        stats::emitJsonString(os, "text");
        os << ": ";
        stats::emitJsonString(os, d.message);
        os << "}, ";
        stats::emitJsonString(os, "locations");
        os << ": [{";
        stats::emitJsonString(os, "physicalLocation");
        os << ": {";
        stats::emitJsonString(os, "artifactLocation");
        os << ": {";
        stats::emitJsonString(os, "uri");
        os << ": ";
        stats::emitJsonString(os, sarifUri(d.path));
        os << "}, ";
        stats::emitJsonString(os, "region");
        os << ": {";
        stats::emitJsonString(os, "startLine");
        os << ": " << (d.line == 0 ? 1 : d.line) << "}}}]}";
    }
    os << "]}]}\n";
}

int
exitCode(const LintResult &result)
{
    if (!result.errors.empty())
        return 2;
    return result.diagnostics.empty() ? 0 : 1;
}

} // namespace gds::lint
