/**
 * @file
 * gds-lint command line front end.
 *
 *   gds-lint [--root DIR] [--json[=FILE]] [--sarif=FILE] <paths...>
 *
 * Exit codes: 0 = clean, 1 = rule violations found, 2 = tool error
 * (unreadable file, bad arguments) — so CI failures are diagnosable at a
 * glance.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

int
usage()
{
    std::printf(
        "usage: gds-lint [--root DIR] [--json[=FILE]] [--sarif=FILE] "
        "<paths...>\n"
        "\n"
        "Lints .cc/.cpp/.hh/.h/.hpp files against the project rules:\n");
    for (const std::string &rule : gds::lint::knownRules())
        std::printf("  %s\n", rule.c_str());
    std::printf(
        "\nSuppress one finding with a justified comment on (or directly\n"
        "above) the offending line:\n"
        "  // gds-lint: allow(<rule>) <justification>\n"
        "Exempt one config-derived field from checkpoint-field-coverage\n"
        "with an own-line comment above its declaration:\n"
        "  // gds-ckpt: skip(<field>) <justification>\n"
        "\n--sarif=FILE writes a SARIF 2.1.0 log for CI code scanning.\n"
        "\nExit codes: 0 clean, 1 violations, 2 tool error.\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool json = false;
    std::string json_file = "-";
    std::string sarif_file;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage();
            root = argv[i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_file = arg.substr(7);
        } else if (arg.rfind("--sarif=", 0) == 0) {
            sarif_file = arg.substr(8);
            if (sarif_file.empty())
                return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stdout, "gds-lint: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage();

    const gds::lint::LintResult result = gds::lint::lintPaths(paths, root);

    if (json && json_file == "-") {
        gds::lint::writeJsonSummary(result, std::cout);
    } else {
        gds::lint::printDiagnostics(result, std::cout);
        if (json) {
            std::ofstream out(json_file);
            if (out)
                gds::lint::writeJsonSummary(result, out);
            else
                std::printf("gds-lint: cannot write JSON summary to %s\n",
                            json_file.c_str());
        }
    }
    if (!sarif_file.empty()) {
        std::ofstream out(sarif_file);
        if (out)
            gds::lint::writeSarif(result, out);
        else
            std::printf("gds-lint: cannot write SARIF log to %s\n",
                        sarif_file.c_str());
    }
    for (const gds::lint::ToolError &e : result.errors)
        std::printf("gds-lint: error: %s: %s\n", e.path.c_str(),
                    e.message.c_str());
    if (!result.diagnostics.empty()) {
        std::printf("gds-lint: %zu violation(s) in %zu file(s) scanned\n",
                    result.diagnostics.size(), result.filesScanned);
    }
    return gds::lint::exitCode(result);
}
