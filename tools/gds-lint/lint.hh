/**
 * @file
 * gds-lint driver: collects files (walking directories deterministically,
 * skipping build trees and lint fixtures), lexes them, runs the project
 * rules, and renders results as text diagnostics or a machine-readable
 * JSON summary.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rules.hh"

namespace gds::lint
{

/** A file the tool could not process (distinct from a rule violation). */
struct ToolError
{
    std::string path;
    std::string message;
};

struct LintResult
{
    std::vector<Diagnostic> diagnostics;
    std::vector<ToolError> errors;
    std::size_t filesScanned = 0;

    bool clean() const { return diagnostics.empty() && errors.empty(); }
};

/**
 * Lint @p paths (files or directories). Directories are walked recursively
 * in sorted order for .cc/.cpp/.hh/.h/.hpp files; directories named
 * "build*", ".git", or "lint_fixtures" are skipped while recursing
 * (explicitly passed paths are always entered). @p root anchors the
 * relative paths used for rule scoping; empty means the current directory.
 */
LintResult lintPaths(const std::vector<std::string> &paths,
                     const std::string &root);

/** Lint one in-memory buffer (for tests). */
std::vector<Diagnostic> lintBuffer(const std::string &display_path,
                                   const std::string &rel_path,
                                   std::string_view content);

/** Render `file:line: rule: message` lines. */
void printDiagnostics(const LintResult &result, std::ostream &os);

/** Render the JSON summary (rule counts plus every diagnostic). */
void writeJsonSummary(const LintResult &result, std::ostream &os);

/** Process exit code: 0 clean, 1 violations, 2 tool errors. */
int exitCode(const LintResult &result);

} // namespace gds::lint
