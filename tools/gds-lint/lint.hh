/**
 * @file
 * gds-lint driver: collects files (walking directories deterministically,
 * skipping build trees and lint fixtures), lexes them all, runs the
 * per-file rules plus the cross-file class-model rules (R8/R9, see
 * model.hh) over the whole set, and renders results as text diagnostics,
 * a machine-readable JSON summary, or a SARIF 2.1.0 log for CI code
 * scanning.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rules.hh"

namespace gds::lint
{

/** A file the tool could not process (distinct from a rule violation). */
struct ToolError
{
    std::string path;
    std::string message;
};

struct LintResult
{
    std::vector<Diagnostic> diagnostics;
    std::vector<ToolError> errors;
    std::size_t filesScanned = 0;

    bool clean() const { return diagnostics.empty() && errors.empty(); }
};

/**
 * Lint @p paths (files or directories). Directories are walked recursively
 * in sorted order for .cc/.cpp/.hh/.h/.hpp files; directories named
 * "build*", ".git", or "lint_fixtures" are skipped while recursing
 * (explicitly passed paths are always entered). @p root anchors the
 * relative paths used for rule scoping; empty means the current directory.
 */
LintResult lintPaths(const std::vector<std::string> &paths,
                     const std::string &root);

/** One in-memory file for lintBuffers() (tests, or embedding). */
struct BufferInput
{
    std::string displayPath; ///< path reported in diagnostics
    std::string relPath;     ///< repo-relative path for rule scoping
    std::string content;
};

/**
 * Lint a set of in-memory buffers as one analysis unit: per-file rules
 * on each buffer, then the cross-file model rules (R8/R9) over the whole
 * set, with every diagnostic filtered through the suppressions of the
 * file it anchors to. lintPaths() is this over files on disk.
 */
LintResult lintBuffers(const std::vector<BufferInput> &buffers);

/** Lint one in-memory buffer (for tests). Includes the model rules, so
 *  a fixture with inline saveState/restoreState bodies gets R8/R9. */
std::vector<Diagnostic> lintBuffer(const std::string &display_path,
                                   const std::string &rel_path,
                                   std::string_view content);

/** Render `file:line: rule: message` lines. */
void printDiagnostics(const LintResult &result, std::ostream &os);

/** Render the JSON summary (rule counts plus every diagnostic). */
void writeJsonSummary(const LintResult &result, std::ostream &os);

/** Render a SARIF 2.1.0 log (tool + rule metadata, one result per
 *  diagnostic) suitable for GitHub code-scanning upload. */
void writeSarif(const LintResult &result, std::ostream &os);

/** Process exit code: 0 clean, 1 violations, 2 tool errors. */
int exitCode(const LintResult &result);

} // namespace gds::lint
