/**
 * @file
 * The project rule set enforced by gds-lint. Each rule has a stable
 * kebab-case name used in diagnostics and in
 * `// gds-lint: allow(<rule>) <justification>` suppressions:
 *
 *  - no-naked-assert   R1: C `assert()` is banned everywhere (compiled out
 *                      under NDEBUG); `gds_assert()` is banned in the
 *                      user-facing layers (src/algo, src/graph, src/stats,
 *                      src/energy) — those paths must throw typed SimErrors.
 *  - no-raw-stderr     R2: `std::cerr`/`std::clog`/`stderr` only inside
 *                      src/common/logging and src/common/debug; everything
 *                      else reports through warn()/inform()/GDS_DPRINTF so
 *                      emission stays mutex-serialized.
 *  - no-unseeded-rng   R3: `rand()`, `srand()`, `std::random_device`, and
 *                      arglessly-constructed standard engines are banned
 *                      outside src/common/rng.hh; all randomness must be
 *                      explicitly seeded (cached matrix cells are
 *                      byte-compared across runs).
 *  - no-float-eq       R4: `==`/`!=` touching a floating-point literal or a
 *                      float/double-declared identifier is banned in
 *                      src/energy and src/stats.
 *  - header-hygiene    R5: headers carry `#pragma once` and never contain
 *                      `using namespace`.
 *  - component-hooks   R6: every direct sim::Component subclass overrides
 *                      the diagnostic hooks busy(), debugState() and
 *                      activityCounter().
 *  - checkpoint-hooks  R7: every direct sim::Component subclass overrides
 *                      the serialization pair saveState()/restoreState();
 *                      a component missing either silently drops its state
 *                      from every mid-run checkpoint.
 *  - bad-suppression   meta: a gds-lint directive that does not parse, names
 *                      an unknown rule, or lacks a justification.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hh"

namespace gds::lint
{

/** One reported violation. */
struct Diagnostic
{
    std::string path; ///< path as traversed (what the user passed/walked)
    std::size_t line; ///< 1-based
    std::string rule;
    std::string message;
    /** File-scope findings (e.g. a missing #pragma once) are suppressible
     *  by an allow() directive anywhere in the file. */
    bool fileLevel = false;
};

/** All rule names accepted by allow(...). */
const std::vector<std::string> &knownRules();

/**
 * Run every rule over @p file and filter the results through the file's
 * suppressions. @p rel_path is the path relative to the repository root
 * (forward slashes) and drives per-directory rule scoping.
 */
std::vector<Diagnostic> runRules(const LexedFile &file,
                                 const std::string &rel_path);

} // namespace gds::lint
