/**
 * @file
 * The project rule set enforced by gds-lint. Each rule has a stable
 * kebab-case name used in diagnostics and in
 * `// gds-lint: allow(<rule>) <justification>` suppressions:
 *
 *  - no-naked-assert   R1: C `assert()` is banned everywhere (compiled out
 *                      under NDEBUG); `gds_assert()` is banned in the
 *                      user-facing layers (src/algo, src/graph, src/stats,
 *                      src/energy) — those paths must throw typed SimErrors.
 *  - no-raw-stderr     R2: `std::cerr`/`std::clog`/`stderr` only inside
 *                      src/common/logging and src/common/debug; everything
 *                      else reports through warn()/inform()/GDS_DPRINTF so
 *                      emission stays mutex-serialized.
 *  - no-unseeded-rng   R3: `rand()`, `srand()`, `std::random_device`, and
 *                      arglessly-constructed standard engines are banned
 *                      outside src/common/rng.hh; all randomness must be
 *                      explicitly seeded (cached matrix cells are
 *                      byte-compared across runs).
 *  - no-float-eq       R4: `==`/`!=` touching a floating-point literal or a
 *                      float/double-declared identifier is banned in
 *                      src/energy and src/stats.
 *  - header-hygiene    R5: headers carry `#pragma once` and never contain
 *                      `using namespace`.
 *  - component-hooks   R6: every direct sim::Component subclass overrides
 *                      the diagnostic hooks busy(), debugState() and
 *                      activityCounter().
 *  - checkpoint-hooks  R7: every direct sim::Component subclass overrides
 *                      the serialization pair saveState()/restoreState();
 *                      a component missing either silently drops its state
 *                      from every mid-run checkpoint.
 *  - checkpoint-field-coverage
 *                      R8: every non-static data member of a component is
 *                      referenced in BOTH saveState() and restoreState(),
 *                      or carries an own-line `// gds-ckpt: skip(<field>)
 *                      <justification>` exemption (cross-file; see
 *                      model.hh).
 *  - save-restore-symmetry
 *                      R9: saveState() and restoreState() reference the
 *                      serialized fields in the same order (cross-file;
 *                      see model.hh).
 *  - env-knob-discipline
 *                      R10: `std::getenv("GDS_…")` only inside
 *                      src/common/parse.cc and src/common/debug.cc; every
 *                      other knob goes through the common/parse helpers
 *                      (parseEnvU64 / parseEnvF64 / parseEnvStr / envFlag)
 *                      so parsing stays strict and defaults documented.
 *  - no-raw-cerr-logging
 *                      R11: streaming with `std::cerr <<` is banned
 *                      everywhere except src/common/log.cc and
 *                      src/common/debug — narrower than R2: even inside
 *                      R2's src/common/logging carve-out, iostream writes
 *                      bypass the emitRawLine() chokepoint and can shear
 *                      under concurrency; log through common/log
 *                      (log::write / warnf) instead.
 *  - bad-suppression   meta: a gds-lint/gds-ckpt directive that does not
 *                      parse, names an unknown rule or field, lacks a
 *                      justification, or is stale.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hh"

namespace gds::lint
{

/** One reported violation. */
struct Diagnostic
{
    std::string path; ///< path as traversed (what the user passed/walked)
    std::size_t line; ///< 1-based
    std::string rule;
    std::string message;
    /** File-scope findings (e.g. a missing #pragma once) are suppressible
     *  by an allow() directive anywhere in the file. */
    bool fileLevel = false;
};

/** All rule names accepted by allow(...). */
const std::vector<std::string> &knownRules();

/**
 * Run every per-file rule over @p file WITHOUT suppression filtering.
 * @p rel_path is the path relative to the repository root (forward
 * slashes) and drives per-directory rule scoping. The cross-file rules
 * (R8/R9) live in model.hh; the driver appends their diagnostics before
 * filtering everything through applySuppressions().
 */
std::vector<Diagnostic> runFileRules(const LexedFile &file,
                                     const std::string &rel_path);

/**
 * Filter @p diags (all anchored to @p file) through the file's allow()
 * suppressions and return the survivors sorted by line then rule. An
 * own-line suppression covers the next line with code on it; file-level
 * diagnostics are suppressible from anywhere in the file.
 */
std::vector<Diagnostic> applySuppressions(std::vector<Diagnostic> diags,
                                          const LexedFile &file);

/**
 * Convenience for single-file analysis: runFileRules() filtered through
 * applySuppressions(). Does NOT include the cross-file model rules.
 */
std::vector<Diagnostic> runRules(const LexedFile &file,
                                 const std::string &rel_path);

} // namespace gds::lint
